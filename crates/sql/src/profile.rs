//! `EXPLAIN ANALYZE`: execute a plan with the profiler armed and render
//! plan-vs-actual, per operator.
//!
//! [`profile_query`] plans the statement with a recorder attached (so the
//! planner's zero-width `Plan` span is captured), executes it through
//! [`crate::exec::execute_profiled`] — every operator counts its emitted
//! rows, unfiltered scans tally key frequencies, and each join stage
//! records its span stream on a stage-private recorder — then assembles:
//!
//! * a [`QueryProfile`] (the stable JSON schema exported by
//!   `tapejoin-obs`) with estimated vs actual cardinality, Q-error, the
//!   tape/disk/CPU virtual-time split, chosen method vs priced
//!   runner-ups, and fault/retry/restart counts per operator;
//! * a merged span stream on the *query* timeline: stages execute
//!   sequentially, so stage `k`'s spans are rebased by the summed
//!   response of stages `0..k` and nested under per-operator scopes
//!   under one `Query` span — the conservation auditor passes on it;
//! * the rendered `EXPLAIN ANALYZE` text.
//!
//! The virtual-time split attributes each instant of a join stage to
//! **tape** if any tape drive was busy, else **disk** if any disk was
//! busy, else **CPU** (residual host time under the zero-CPU
//! assumption). The three parts therefore tile the stage's response
//! exactly even though devices overlap.

use std::collections::{BTreeMap, HashMap};

use tapejoin::SystemConfig;
use tapejoin_obs::{
    q_error, Alternative, OperatorProfile, QueryProfile, Recorder, Span, SpanId, SpanKind,
};
use tapejoin_sim::SimTime;

use crate::catalog::{measured_heavy_fraction, measured_zipf_theta, Catalog};
use crate::error::SqlError;
use crate::exec::{execute_profiled, ExecProbe, JoinRun, QueryOutput};
use crate::logical::{Bound, Col};
use crate::physical::{Physical, PhysicalPlan, PlannerMode};
use crate::{plan_statement, Planned};

/// Everything a profiled execution produces.
#[derive(Clone, Debug)]
pub struct Profiled {
    /// The query result (identical to an unprofiled run).
    pub output: QueryOutput,
    /// The per-operator plan-vs-actual profile.
    pub profile: QueryProfile,
    /// Merged span stream on the query timeline: one `Query` span, the
    /// planner's `Plan` marker, per-operator scopes, and every join
    /// stage's device spans rebased onto the shared clock. Passes the
    /// conservation auditor.
    pub spans: Vec<Span>,
    /// Rendered `EXPLAIN ANALYZE` text.
    pub text: String,
}

/// Plan, execute and profile one statement (the programmatic
/// `EXPLAIN ANALYZE`). The statement may be a plain `SELECT` — the
/// `EXPLAIN ANALYZE` prefix is not required here.
pub fn profile_query(
    sql: &str,
    catalog: &Catalog,
    cfg: &SystemConfig,
    mode: PlannerMode,
) -> Result<Profiled, SqlError> {
    // Arm a recorder for planning so the zero-width Plan span lands in
    // the merged stream; join stages record on their own recorders.
    let plan_rec = Recorder::enabled();
    let sys = cfg.clone().recorder(plan_rec.share());
    let planned = plan_statement(sql, catalog, &sys, mode)?;
    profile_planned(&planned, catalog, &sys, plan_rec.spans())
}

/// [`profile_query`] for an already-planned statement.
pub fn profile_planned(
    planned: &Planned,
    catalog: &Catalog,
    cfg: &SystemConfig,
    plan_spans: Vec<Span>,
) -> Result<Profiled, SqlError> {
    let (output, probe) = execute_profiled(&planned.plan, &planned.bound, catalog, cfg)?;
    let operators = operator_profiles(&planned.plan, &planned.bound, &output, &probe);
    let actual_join_seconds = output
        .joins
        .iter()
        .map(|r| r.stats.response.as_secs_f64())
        .sum();
    let profile = QueryProfile {
        sql: planned.statement.select().to_string(),
        mode: mode_name(planned.plan.mode).to_string(),
        join_order: planned
            .plan
            .order
            .iter()
            .map(|&t| planned.bound.tables[t].name.clone())
            .collect(),
        est_join_seconds: planned.plan.est_join_seconds,
        actual_join_seconds,
        operators,
    };
    let spans = assemble_spans(&profile, &output.joins, plan_spans);
    let text = render_analyze(&planned.plan, &profile);
    Ok(Profiled {
        output,
        profile,
        spans,
        text,
    })
}

fn mode_name(mode: PlannerMode) -> &'static str {
    match mode {
        PlannerMode::CostBased => "cost-based",
        PlannerMode::Syntactic => "syntactic",
    }
}

// ---------------------------------------------------------------------------
// Per-operator profiles

/// Preorder node list: a node before its children, a join's build child
/// before its probe child — the numbering contract of
/// [`crate::exec::ExecProbe`].
fn preorder<'a>(phys: &'a Physical, out: &mut Vec<&'a Physical>) {
    out.push(phys);
    match phys {
        Physical::Join { build, probe, .. } => {
            preorder(build, out);
            preorder(probe, out);
        }
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Limit { input, .. } => preorder(input, out),
        Physical::Scan { .. } => {}
    }
}

fn col_name(c: Col, bound: &Bound) -> String {
    format!("{}.{}", bound.tables[c.table].name, c.field.name())
}

fn op_and_label(phys: &Physical, bound: &Bound) -> (&'static str, String) {
    match phys {
        Physical::Scan { table, .. } => ("scan", format!("TapeScan {}", bound.tables[*table].name)),
        Physical::Join {
            build_col,
            probe_col,
            choice,
            ..
        } => (
            "join",
            format!(
                "TertiaryJoin [{}] on {} = {}",
                choice.method.abbrev(),
                col_name(*build_col, bound),
                col_name(*probe_col, bound)
            ),
        ),
        Physical::Filter { pred, .. } => (
            "filter",
            format!(
                "Filter {} {} {}",
                col_name(pred.col, bound),
                pred.op,
                pred.value
            ),
        ),
        Physical::Project { .. } => ("project", "Project".to_string()),
        Physical::Sort { topn, .. } => (
            "sort",
            match topn {
                Some(n) => format!("Sort top-{n}"),
                None => "Sort".to_string(),
            },
        ),
        Physical::Limit { n, .. } => ("limit", format!("Limit {n}")),
    }
}

fn operator_profiles(
    plan: &PhysicalPlan,
    bound: &Bound,
    output: &QueryOutput,
    probe: &ExecProbe,
) -> Vec<OperatorProfile> {
    let mut nodes = Vec::new();
    preorder(&plan.root, &mut nodes);
    nodes
        .iter()
        .enumerate()
        .map(|(i, phys)| {
            let (op, label) = op_and_label(phys, bound);
            let est_rows = phys.est().rows;
            let actual_rows = probe.emitted.get(i).copied().unwrap_or(0);
            let mut prof = OperatorProfile {
                op: op.to_string(),
                label,
                est_rows,
                actual_rows,
                q_error: q_error(est_rows, actual_rows),
                method: None,
                expected_seconds: 0.0,
                actual_seconds: 0.0,
                tape_seconds: 0.0,
                disk_seconds: 0.0,
                cpu_seconds: 0.0,
                alternatives: Vec::new(),
                faults: 0,
                fault_retries: 0,
                restarts: 0,
                work_salvaged_bytes: 0,
                table: None,
                distinct_keys: 0,
                heavy_fraction: 0.0,
                zipf_theta: 0.0,
                filtered: false,
            };
            match phys {
                Physical::Join { choice, .. } => {
                    prof.method = Some(choice.method.abbrev().to_string());
                    prof.expected_seconds = choice.expected_seconds;
                    prof.alternatives = choice
                        .alternatives
                        .iter()
                        .map(|c| Alternative {
                            method: c.method.abbrev().to_string(),
                            expected_seconds: c.expected_seconds,
                        })
                        .collect();
                    // An empty input side short-circuits the stage: no
                    // JoinRun, zero time, zero devices — the zeros above
                    // already say so.
                    if let Some(run) = output.joins.iter().find(|r| r.node == i) {
                        // The method that finished can differ from the
                        // plan after a degraded-mode re-plan.
                        prof.method = Some(run.stats.method.abbrev().to_string());
                        let (tape, disk, cpu, total) = time_split(run);
                        prof.actual_seconds = total;
                        prof.tape_seconds = tape;
                        prof.disk_seconds = disk;
                        prof.cpu_seconds = cpu;
                        prof.faults = run.stats.faults.total();
                        prof.fault_retries = run.stats.tape_r.fault_retries
                            + run.stats.tape_s.fault_retries
                            + run.stats.disk.fault_retries;
                        prof.restarts = u64::from(run.stats.restarts);
                        prof.work_salvaged_bytes = run.stats.work_salvaged_bytes;
                    }
                }
                Physical::Scan {
                    table,
                    filters,
                    limit,
                    ..
                } => {
                    prof.table = Some(bound.tables[*table].name.clone());
                    prof.filtered = !filters.is_empty() || limit.is_some();
                    if let Some(obs) = probe.scans.iter().find(|s| s.node == i) {
                        let (distinct, heavy, theta) = freq_stats(&obs.freq);
                        prof.distinct_keys = distinct;
                        prof.heavy_fraction = heavy;
                        prof.zipf_theta = theta;
                    }
                }
                _ => {}
            }
            prof
        })
        .collect()
}

/// Distinct count, heavy-hitter excess and fitted Zipf-θ of an observed
/// key-frequency map, using the same estimators the catalog's `ANALYZE`
/// scan uses.
fn freq_stats(freq: &BTreeMap<u64, u64>) -> (u64, f64, f64) {
    let tuples: u64 = freq.values().sum();
    let mut counts: Vec<u64> = freq.values().copied().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    (
        counts.len() as u64,
        measured_heavy_fraction(&counts, tuples),
        measured_zipf_theta(&counts),
    )
}

/// Attribute the stage's response to tape / disk / CPU by interval
/// coverage (tape wins ties, CPU is the uncovered remainder), so the
/// three parts tile the response exactly despite device overlap.
/// Returns seconds `(tape, disk, cpu, total)`.
fn time_split(run: &JoinRun) -> (f64, f64, f64, f64) {
    let resp = run.stats.response.as_nanos();
    let mut tape: Vec<(u64, u64)> = Vec::new();
    let mut device: Vec<(u64, u64)> = Vec::new();
    for s in &run.spans {
        if s.kind != SpanKind::DeviceOp {
            continue;
        }
        let Some(end) = s.end else { continue };
        let a = s.start.as_nanos().min(resp);
        let b = end.as_nanos().min(resp);
        if b <= a {
            continue;
        }
        if s.track.starts_with("tape") {
            tape.push((a, b));
        }
        if s.track.starts_with("tape") || s.track.starts_with("disk") {
            device.push((a, b));
        }
    }
    let tape_ns = union_len(tape);
    let device_ns = union_len(device);
    (
        secs(tape_ns),
        // Unions are clamped to `resp` and tape ⊆ device, but keep the
        // subtractions saturating so a span-accounting bug can never
        // wrap a u64 into a 584-year CPU time.
        secs(device_ns.saturating_sub(tape_ns)),
        secs(resp.saturating_sub(device_ns)),
        secs(resp),
    )
}

/// Nanoseconds to seconds, via the typed duration.
fn secs(ns: u64) -> f64 {
    tapejoin_sim::Duration::from_nanos(ns).as_secs_f64()
}

/// Total length of the union of half-open intervals.
fn union_len(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (a, b) in iv {
        match &mut cur {
            Some((_, ce)) if a <= *ce => *ce = (*ce).max(b),
            _ => {
                if let Some((cs, ce)) = cur {
                    total += ce - cs;
                }
                cur = Some((a, b));
            }
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

// ---------------------------------------------------------------------------
// Merged span stream

/// Merge the planner's spans and every stage's span stream onto one
/// query timeline:
///
/// * span 0 is a `Query` scope covering `[0, Σ stage responses]`;
/// * the planner's zero-width `Plan` markers re-parent under it;
/// * each operator gets a `Scope` span (joins span their stage's
///   interval, other operators are zero-width markers);
/// * each stage's spans shift by the summed response of the stages that
///   ran before it and nest under their operator's scope.
///
/// Span ids are re-assigned to equal vector indices — the contract
/// `tapejoin_obs::audit_spans` requires.
fn assemble_spans(profile: &QueryProfile, joins: &[JoinRun], plan_spans: Vec<Span>) -> Vec<Span> {
    let total_ns: u64 = joins.iter().map(|r| r.stats.response.as_nanos()).sum();
    let mut spans: Vec<Span> = Vec::new();
    spans.push(Span {
        id: SpanId(0),
        parent: None,
        kind: SpanKind::Query,
        track: "sql".to_string(),
        name: "query".to_string(),
        start: SimTime::ZERO,
        end: Some(SimTime::from_nanos(total_ns)),
        attrs: Vec::new(),
    });
    let plan_base = spans.len();
    for mut s in plan_spans {
        let old = s.id.0;
        s.id = SpanId(plan_base + old);
        s.parent = Some(match s.parent {
            Some(p) => SpanId(plan_base + p.0),
            None => SpanId(0),
        });
        spans.push(s);
    }

    // Stage offsets on the query timeline, keyed by plan-node index.
    let mut offsets: HashMap<usize, (u64, u64)> = HashMap::new();
    let mut t = 0u64;
    for run in joins {
        let resp = run.stats.response.as_nanos();
        offsets.insert(run.node, (t, resp));
        t = t.saturating_add(resp);
    }

    // One Scope span per operator, preorder — node i gets id op_base + i.
    let op_base = spans.len();
    for (i, op) in profile.operators.iter().enumerate() {
        let (start, end) = match offsets.get(&i) {
            Some(&(off, resp)) => (off, off.saturating_add(resp)),
            None => (0, 0),
        };
        spans.push(Span {
            id: SpanId(op_base + i),
            parent: Some(SpanId(0)),
            kind: SpanKind::Scope,
            track: "sql".to_string(),
            name: op.label.clone(),
            start: SimTime::from_nanos(start),
            end: Some(SimTime::from_nanos(end)),
            attrs: Vec::new(),
        });
    }

    // Stage streams, in execution order so per-track device ops stay
    // chronologically sorted across stages.
    for run in joins {
        let Some(&(off, _)) = offsets.get(&run.node) else {
            continue;
        };
        let base = spans.len();
        for s in &run.spans {
            let mut s = s.clone();
            let old = s.id.0;
            s.id = SpanId(base + old);
            s.parent = Some(match s.parent {
                Some(p) => SpanId(base + p.0),
                None => SpanId(op_base + run.node),
            });
            s.start = SimTime::from_nanos(off.saturating_add(s.start.as_nanos()));
            s.end = s
                .end
                .map(|e| SimTime::from_nanos(off.saturating_add(e.as_nanos())));
            spans.push(s);
        }
    }
    spans
}

// ---------------------------------------------------------------------------
// Rendering

/// Render the `EXPLAIN ANALYZE` tree: the `EXPLAIN` shape with actual
/// cardinality, Q-error and the virtual-time split appended per operator.
fn render_analyze(plan: &PhysicalPlan, profile: &QueryProfile) -> String {
    let mut out = format!(
        "profile: {} join order [{}], est join time {:.1}s, actual {:.1}s\n",
        profile.mode,
        profile.join_order.join(" -> "),
        profile.est_join_seconds,
        profile.actual_join_seconds,
    );
    let mut idx = 0usize;
    render(&plan.root, profile, &mut idx, "", "", true, &mut out);
    out
}

fn operator_line(op: &OperatorProfile) -> String {
    let mut s = format!(
        "{} est~{} actual={} q={:.2}",
        op.label,
        op.est_rows.round() as u64,
        op.actual_rows,
        op.q_error
    );
    if op.method.is_some() {
        s.push_str(&format!(
            " time={:.1}s (tape {:.1}s disk {:.1}s cpu {:.1}s)",
            op.actual_seconds, op.tape_seconds, op.disk_seconds, op.cpu_seconds
        ));
        if !op.alternatives.is_empty() {
            s.push_str(" alt:");
            for (i, a) in op.alternatives.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!(" {} {:.1}s", a.method, a.expected_seconds));
            }
        }
        if op.faults > 0 || op.restarts > 0 {
            s.push_str(&format!(
                " faults={} retries={} restarts={} salvaged={}B",
                op.faults, op.fault_retries, op.restarts, op.work_salvaged_bytes
            ));
        }
    }
    if op.table.is_some() && !op.filtered {
        s.push_str(&format!(
            " observed{{distinct={} heavy={:.2} theta={:.2}}}",
            op.distinct_keys, op.heavy_fraction, op.zipf_theta
        ));
    }
    s
}

fn render(
    node: &Physical,
    profile: &QueryProfile,
    idx: &mut usize,
    prefix: &str,
    tag: &str,
    last: bool,
    out: &mut String,
) {
    let (branch, child_prefix) = if prefix.is_empty() {
        (String::new(), String::new())
    } else if last {
        (format!("{prefix}└─ "), format!("{prefix}   "))
    } else {
        (format!("{prefix}├─ "), format!("{prefix}│  "))
    };
    let line = operator_line(&profile.operators[*idx]);
    *idx += 1;
    out.push_str(&format!("{branch}{tag}{line}\n"));
    let cp = if child_prefix.is_empty() {
        "  "
    } else {
        &child_prefix
    };
    match node {
        Physical::Join { build, probe, .. } => {
            render(build, profile, idx, cp, "build: ", false, out);
            render(probe, profile, idx, cp, "probe: ", true, out);
        }
        Physical::Filter { input, .. }
        | Physical::Project { input, .. }
        | Physical::Sort { input, .. }
        | Physical::Limit { input, .. } => {
            render(input, profile, idx, cp, "", true, out);
        }
        Physical::Scan { .. } => {}
    }
}
