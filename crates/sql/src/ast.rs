//! Typed AST for the supported SQL subset, with a canonical
//! pretty-printer ([`std::fmt::Display`]) whose output re-parses to the
//! same statement — the round-trip property the `sql_props` suite pins.
//!
//! The subset (see DESIGN.md §14):
//!
//! ```sql
//! [EXPLAIN [ANALYZE]] SELECT <* | col[, col]*>
//! FROM <table> [INNER JOIN <table> ON <col> = <col>]*
//! [WHERE <col> <op> <int> [AND <col> <op> <int>]*]
//! [ORDER BY <col> [ASC|DESC][, ...]]
//! [LIMIT <int>] [;]
//! ```
//!
//! Every relation has exactly the engine's tuple schema: a `key` column
//! (the join attribute) and a `rid` column. Comparisons are always
//! `column <op> integer-literal`; join predicates are always equalities
//! between two `key` columns.

use std::fmt;

use crate::error::Span;

/// A parsed statement.
#[derive(Clone, Debug, PartialEq)]
pub enum Statement {
    /// Run the query.
    Select(Select),
    /// Plan the query and render the physical plan instead of running it.
    Explain(Select),
    /// Run the query with the profiler armed and render the plan with
    /// per-operator actuals (`EXPLAIN ANALYZE`).
    ExplainAnalyze(Select),
}

impl Statement {
    /// The underlying query, either way.
    pub fn select(&self) -> &Select {
        match self {
            Statement::Select(s) | Statement::Explain(s) | Statement::ExplainAnalyze(s) => s,
        }
    }

    /// Whether this is an `EXPLAIN` (plan only, no execution).
    pub fn is_explain(&self) -> bool {
        matches!(self, Statement::Explain(_))
    }

    /// Whether this is an `EXPLAIN ANALYZE` (execute + profile).
    pub fn is_analyze(&self) -> bool {
        matches!(self, Statement::ExplainAnalyze(_))
    }
}

/// One `SELECT` query.
#[derive(Clone, Debug, PartialEq)]
pub struct Select {
    /// Projection list.
    pub items: Vec<SelectItem>,
    /// First `FROM` table.
    pub from: TableRef,
    /// `INNER JOIN ... ON ...` clauses, in syntactic order.
    pub joins: Vec<JoinClause>,
    /// `WHERE` conjunction (empty = no `WHERE`).
    pub predicates: Vec<Comparison>,
    /// `ORDER BY` keys (empty = no ordering).
    pub order_by: Vec<OrderKey>,
    /// `LIMIT` row count.
    pub limit: Option<u64>,
}

/// One projection item.
#[derive(Clone, Debug, PartialEq)]
pub enum SelectItem {
    /// `*`: every column of every table, in `FROM` order.
    Star,
    /// One column.
    Column(ColumnRef),
}

/// A table mention.
#[derive(Clone, Debug, PartialEq)]
pub struct TableRef {
    /// Table (catalog) name.
    pub name: String,
    /// Source position.
    pub span: Span,
}

/// One `INNER JOIN <table> ON <left> = <right>` clause.
#[derive(Clone, Debug, PartialEq)]
pub struct JoinClause {
    /// The joined table.
    pub table: TableRef,
    /// Left side of the equi-predicate.
    pub left: ColumnRef,
    /// Right side of the equi-predicate.
    pub right: ColumnRef,
}

/// The two columns every relation has.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Field {
    /// The join attribute.
    Key,
    /// The record id.
    Rid,
}

impl Field {
    /// Column name as written in SQL.
    pub fn name(self) -> &'static str {
        match self {
            Field::Key => "key",
            Field::Rid => "rid",
        }
    }
}

/// A (possibly qualified) column reference.
#[derive(Clone, Debug, PartialEq)]
pub struct ColumnRef {
    /// Qualifying table name, when written.
    pub table: Option<String>,
    /// Which column.
    pub field: Field,
    /// Source position.
    pub span: Span,
}

/// Comparison operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CmpOp {
    /// Evaluate the comparison.
    pub fn eval(self, lhs: u64, rhs: u64) -> bool {
        match self {
            CmpOp::Eq => lhs == rhs,
            CmpOp::Ne => lhs != rhs,
            CmpOp::Lt => lhs < rhs,
            CmpOp::Le => lhs <= rhs,
            CmpOp::Gt => lhs > rhs,
            CmpOp::Ge => lhs >= rhs,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// One `WHERE` conjunct: `column <op> literal`.
#[derive(Clone, Debug, PartialEq)]
pub struct Comparison {
    /// Left-hand column.
    pub col: ColumnRef,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand integer literal.
    pub value: u64,
}

/// One `ORDER BY` key.
#[derive(Clone, Debug, PartialEq)]
pub struct OrderKey {
    /// The sort column.
    pub col: ColumnRef,
    /// `true` for `DESC`.
    pub desc: bool,
}

impl fmt::Display for ColumnRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.table {
            Some(t) => write!(f, "{t}.{}", self.field.name()),
            None => f.write_str(self.field.name()),
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.col, self.op, self.value)
    }
}

impl fmt::Display for Select {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SELECT ")?;
        for (i, item) in self.items.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            match item {
                SelectItem::Star => f.write_str("*")?,
                SelectItem::Column(c) => write!(f, "{c}")?,
            }
        }
        write!(f, " FROM {}", self.from.name)?;
        for j in &self.joins {
            write!(
                f,
                " INNER JOIN {} ON {} = {}",
                j.table.name, j.left, j.right
            )?;
        }
        for (i, p) in self.predicates.iter().enumerate() {
            f.write_str(if i == 0 { " WHERE " } else { " AND " })?;
            write!(f, "{p}")?;
        }
        for (i, k) in self.order_by.iter().enumerate() {
            f.write_str(if i == 0 { " ORDER BY " } else { ", " })?;
            write!(f, "{}{}", k.col, if k.desc { " DESC" } else { " ASC" })?;
        }
        if let Some(n) = self.limit {
            write!(f, " LIMIT {n}")?;
        }
        Ok(())
    }
}

impl fmt::Display for Statement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Statement::Select(s) => write!(f, "{s}"),
            Statement::Explain(s) => write!(f, "EXPLAIN {s}"),
            Statement::ExplainAnalyze(s) => write!(f, "EXPLAIN ANALYZE {s}"),
        }
    }
}
