//! Naive in-memory reference evaluator: runs a [`Logical`] plan directly
//! (nested-loop joins, filter-after-join if that is where the plan puts
//! the filter), with no pushdown, no cost model and no tape machinery.
//!
//! This is the oracle for the pushdown-equivalence property suite: the
//! optimized, tape-executed pipeline must produce exactly this row
//! multiset (and the same row order when an `ORDER BY` makes the order
//! total).

use tapejoin_rel::Tuple;

use crate::ast::Field;
use crate::catalog::Catalog;
use crate::error::SqlError;
use crate::exec::{col_index, sort_rows, Row};
use crate::logical::{Bound, Col, Logical};

/// Evaluate the bound query's logical plan directly.
pub fn eval(bound: &Bound, catalog: &Catalog) -> Result<Vec<Row>, SqlError> {
    eval_node(&bound.root, bound, catalog)
}

fn eval_node(node: &Logical, bound: &Bound, catalog: &Catalog) -> Result<Vec<Row>, SqlError> {
    match node {
        Logical::Scan {
            table,
            filters,
            limit,
        } => {
            let rel = &catalog.table(bound.tables[*table].catalog).relation;
            let mut rows: Vec<Row> = Vec::new();
            for t in rel.tuples() {
                let keep = filters
                    .iter()
                    .all(|p| p.op.eval(field_of(t, p.col.field), p.value));
                if keep {
                    rows.push(vec![t.key, t.rid]);
                    if let Some(n) = limit {
                        if rows.len() as u64 >= *n {
                            break;
                        }
                    }
                }
            }
            Ok(rows)
        }
        Logical::Join {
            left,
            right,
            ltab,
            rtab,
        } => {
            let lrows = eval_node(left, bound, catalog)?;
            let rrows = eval_node(right, bound, catalog)?;
            let li = col_index(
                &left.schema(),
                Col {
                    table: *ltab,
                    field: Field::Key,
                },
            )?;
            let ri = col_index(
                &right.schema(),
                Col {
                    table: *rtab,
                    field: Field::Key,
                },
            )?;
            let mut out = Vec::new();
            for l in &lrows {
                for r in &rrows {
                    if l[li] == r[ri] {
                        let mut row = l.clone();
                        row.extend_from_slice(r);
                        out.push(row);
                    }
                }
            }
            Ok(out)
        }
        Logical::Filter { input, pred } => {
            let idx = col_index(&input.schema(), pred.col)?;
            let mut rows = eval_node(input, bound, catalog)?;
            rows.retain(|row| pred.op.eval(row[idx], pred.value));
            Ok(rows)
        }
        Logical::Project { input, cols } => {
            let schema = input.schema();
            let idx = cols
                .iter()
                .map(|&c| col_index(&schema, c))
                .collect::<Result<Vec<_>, _>>()?;
            let rows = eval_node(input, bound, catalog)?;
            Ok(rows
                .into_iter()
                .map(|row| idx.iter().map(|&i| row[i]).collect())
                .collect())
        }
        Logical::Sort { input, keys, topn } => {
            let schema = input.schema();
            let keys = keys
                .iter()
                .map(|&(c, desc)| Ok((col_index(&schema, c)?, desc)))
                .collect::<Result<Vec<_>, SqlError>>()?;
            let mut rows = eval_node(input, bound, catalog)?;
            sort_rows(&mut rows, &keys);
            if let Some(n) = topn {
                rows.truncate(*n as usize);
            }
            Ok(rows)
        }
        Logical::Limit { input, n } => {
            let mut rows = eval_node(input, bound, catalog)?;
            rows.truncate(*n as usize);
            Ok(rows)
        }
    }
}

fn field_of(t: Tuple, f: Field) -> u64 {
    match f {
        Field::Key => t.key,
        Field::Rid => t.rid,
    }
}
