//! Behavioural tests for the simulation kernel beyond the per-module
//! unit tests: stress shapes, handle semantics, activity logging and
//! trace interplay.

use std::cell::RefCell;
use std::rc::Rc;
use tapejoin_sim::sync::{channel, Mutex, Notify, Semaphore};
use tapejoin_sim::{
    join3, now, sleep, spawn, yield_now, ActivityLog, Duration, Server, SimTime, Simulation, Trace,
};

#[test]
fn ten_thousand_interleaved_tasks_settle() {
    let mut sim = Simulation::new();
    let total = sim.run(async {
        let sum = Rc::new(RefCell::new(0u64));
        let mut handles = Vec::new();
        for i in 0..10_000u64 {
            let sum = Rc::clone(&sum);
            handles.push(spawn(async move {
                sleep(Duration::from_nanos(i % 37)).await;
                *sum.borrow_mut() += 1;
            }));
        }
        for h in handles {
            h.join().await;
        }
        let total = *sum.borrow();
        total
    });
    assert_eq!(total, 10_000);
}

#[test]
fn join_handle_is_finished_transitions() {
    let mut sim = Simulation::new();
    sim.run(async {
        let h = spawn(async {
            sleep(Duration::from_secs(1)).await;
        });
        assert!(!h.is_finished());
        sleep(Duration::from_secs(2)).await;
        assert!(h.is_finished());
        h.join().await;
    });
}

#[test]
fn join3_returns_all_outputs_at_the_slowest() {
    let mut sim = Simulation::new();
    let (a, b, c) = sim.run(async {
        let out = join3(
            async {
                sleep(Duration::from_secs(1)).await;
                'a'
            },
            async {
                sleep(Duration::from_secs(3)).await;
                'b'
            },
            async {
                sleep(Duration::from_secs(2)).await;
                'c'
            },
        )
        .await;
        assert_eq!(now(), SimTime::ZERO + Duration::from_secs(3));
        out
    });
    assert_eq!((a, b, c), ('a', 'b', 'c'));
}

#[test]
fn mutex_try_lock_succeeds_after_release() {
    let mut sim = Simulation::new();
    sim.run(async {
        let m = Mutex::new(5u32);
        {
            let mut g = m.lock().await;
            g.with_mut(|v| *v += 1);
        }
        let g = m.try_lock().expect("uncontended");
        assert_eq!(g.with(|v| *v), 6);
    });
}

#[test]
fn notify_all_does_not_store_permits() {
    let mut sim = Simulation::new();
    sim.run(async {
        let n = Notify::new();
        n.notify_all(); // nobody waiting: nothing stored
        let n2 = n.clone();
        let h = spawn(async move {
            n2.notified().await;
            now()
        });
        sleep(Duration::from_secs(1)).await;
        n.notify_one();
        assert_eq!(h.join().await, SimTime::ZERO + Duration::from_secs(1));
    });
}

#[test]
fn semaphore_waiter_count_reflects_queue() {
    let mut sim = Simulation::new();
    sim.run(async {
        let sem = Semaphore::new(0);
        for _ in 0..3 {
            let s = sem.clone();
            drop(spawn(async move {
                let _p = s.acquire(1).await;
                sleep(Duration::from_secs(100)).await;
            }));
        }
        yield_now().await;
        assert_eq!(sem.waiters(), 3);
        sem.add_permits(1);
        yield_now().await;
        yield_now().await;
        assert_eq!(sem.waiters(), 2);
    });
}

#[test]
fn channel_len_tracks_buffered_values() {
    let mut sim = Simulation::new();
    sim.run(async {
        let (tx, mut rx) = channel::<u8>(4);
        assert!(rx.is_empty());
        tx.send(1).await.unwrap();
        tx.send(2).await.unwrap();
        assert_eq!(rx.len(), 2);
        let _ = rx.recv().await;
        assert_eq!(rx.len(), 1);
    });
}

#[test]
fn server_activity_log_matches_stats() {
    let mut sim = Simulation::new();
    sim.run(async {
        let srv = Server::new("dev");
        let log = ActivityLog::new();
        srv.attach_activity_log(log.clone());
        for _ in 0..4 {
            srv.serve(Duration::from_secs(2)).await;
            sleep(Duration::from_secs(1)).await;
        }
        assert_eq!(log.len(), 4);
        assert_eq!(log.busy(), srv.stats().busy);
        // Entries are disjoint and ordered.
        let entries = log.entries();
        for pair in entries.windows(2) {
            assert!(pair[0].end <= pair[1].start);
        }
    });
}

#[test]
fn trace_record_now_uses_virtual_time() {
    let mut sim = Simulation::new();
    sim.run(async {
        let t = Trace::new("x");
        t.record_now(1.0);
        sleep(Duration::from_secs(5)).await;
        t.record_now(2.0);
        let pts = t.points();
        assert_eq!(pts[0].at, SimTime::ZERO);
        assert_eq!(pts[1].at, SimTime::ZERO + Duration::from_secs(5));
    });
}

#[test]
fn utilization_accounts_idle_time() {
    let mut sim = Simulation::new();
    sim.run(async {
        let srv = Server::new("dev");
        srv.serve(Duration::from_secs(1)).await;
        sleep(Duration::from_secs(3)).await;
        let u = srv.stats().utilization(now());
        assert!((u - 0.25).abs() < 1e-9);
    });
}

#[test]
fn time_display_formats() {
    assert_eq!(format!("{}", Duration::from_millis(1500)), "1.500s");
    assert_eq!(format!("{}", SimTime::from_nanos(2_000_000_000)), "2.000s");
    assert_eq!(format!("{:?}", Duration::from_secs(1)), "1.000000s");
}

#[test]
fn durations_sum() {
    let total: Duration = (1..=4).map(Duration::from_secs).sum();
    assert_eq!(total, Duration::from_secs(10));
}
