//! Property test for [`ActivityLog`]: intervals recorded through a FIFO
//! [`Server`] are time-ordered and never overlap — the structural
//! invariant the busy-time accounting and the Gantt renderers rely on,
//! and the same per-track serialization law the observability layer's
//! conservation auditor re-checks on span streams.

use proptest::prelude::*;
use tapejoin_sim::{sleep, spawn, ActivityLog, Duration, Server, Simulation};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any pattern of concurrent requests against one server yields a
    /// log whose entries are ordered by start and pairwise disjoint, and
    /// whose summed durations equal the server's busy time.
    #[test]
    fn busy_intervals_are_ordered_and_disjoint(
        requests in prop::collection::vec((0u64..500, 1u64..200), 1..40),
    ) {
        let log = ActivityLog::new();
        let server = Server::new("dev");
        server.attach_activity_log(log.clone());

        let mut sim = Simulation::new();
        let srv = server.clone();
        sim.run(async move {
            let mut tasks = Vec::new();
            for (delay, service) in requests {
                let srv = srv.clone();
                tasks.push(spawn(async move {
                    sleep(Duration::from_nanos(delay)).await;
                    srv.serve(Duration::from_nanos(service)).await;
                }));
            }
            for t in tasks {
                t.join().await;
            }
        });

        let entries = log.entries();
        prop_assert!(!entries.is_empty());
        for pair in entries.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            prop_assert!(a.start <= b.start, "entries out of start order");
            prop_assert!(
                b.start >= a.end,
                "busy intervals overlap: [{:?}, {:?}] then [{:?}, {:?}]",
                a.start, a.end, b.start, b.end
            );
        }
        prop_assert_eq!(log.busy(), server.stats().busy);
    }
}
