//! Property tests for the simulation kernel's ordering and conservation
//! invariants.

use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use tapejoin_sim::sync::{channel, Semaphore};
use tapejoin_sim::{now, sleep, spawn, Duration, Simulation};

proptest! {
    /// Timers fire in deadline order regardless of registration order,
    /// with ties broken by registration sequence.
    #[test]
    fn timers_fire_in_deadline_order(delays in proptest::collection::vec(0u64..1_000, 1..40)) {
        let mut sim = Simulation::new();
        let fired: Vec<(u64, usize)> = sim.run({
            let delays = delays.clone();
            async move {
                let log = Rc::new(RefCell::new(Vec::new()));
                let mut handles = Vec::new();
                for (idx, &d) in delays.iter().enumerate() {
                    let log = Rc::clone(&log);
                    handles.push(spawn(async move {
                        sleep(Duration::from_nanos(d)).await;
                        log.borrow_mut().push((now().as_nanos(), idx));
                    }));
                }
                for h in handles {
                    h.join().await;
                }
                Rc::try_unwrap(log).unwrap().into_inner()
            }
        });
        // Completion times are the delays themselves, in sorted order.
        let times: Vec<u64> = fired.iter().map(|(t, _)| *t).collect();
        let mut sorted = times.clone();
        sorted.sort_unstable();
        prop_assert_eq!(&times, &sorted);
        // Equal deadlines fire in spawn order.
        for w in fired.windows(2) {
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "tie broken out of order: {:?}", w);
            }
        }
    }

    /// The channel delivers every value exactly once, in per-sender
    /// order, for any capacity and message count.
    #[test]
    fn channel_is_lossless_fifo(cap in 1usize..16, counts in proptest::collection::vec(1u64..50, 1..4)) {
        let mut sim = Simulation::new();
        let received: Vec<(usize, u64)> = sim.run({
            let counts = counts.clone();
            async move {
                let (tx, mut rx) = channel::<(usize, u64)>(cap);
                for (sender, &n) in counts.iter().enumerate() {
                    let tx = tx.clone();
                    spawn(async move {
                        for i in 0..n {
                            tx.send((sender, i)).await.unwrap();
                        }
                    });
                }
                drop(tx);
                let mut out = Vec::new();
                while let Some(v) = rx.recv().await {
                    out.push(v);
                }
                out
            }
        });
        let total: u64 = counts.iter().sum();
        prop_assert_eq!(received.len() as u64, total);
        for (sender, &n) in counts.iter().enumerate() {
            let seq: Vec<u64> = received.iter().filter(|(s, _)| *s == sender).map(|(_, i)| *i).collect();
            prop_assert_eq!(seq, (0..n).collect::<Vec<_>>());
        }
    }

    /// Semaphore permits are conserved across arbitrary acquire/release
    /// interleavings, and available+held never exceeds the initial count.
    #[test]
    fn semaphore_conserves_permits(initial in 1u64..20, ops in proptest::collection::vec(1u64..5, 1..30)) {
        let mut sim = Simulation::new();
        let final_available = sim.run({
            let ops = ops.clone();
            async move {
                let sem = Semaphore::new(initial);
                let mut handles = Vec::new();
                for (i, &amount) in ops.iter().enumerate() {
                    let sem = sem.clone();
                    let amount = amount.min(initial); // never exceed capacity
                    handles.push(spawn(async move {
                        let p = sem.acquire(amount).await;
                        sleep(Duration::from_nanos((i as u64 % 7) + 1)).await;
                        drop(p);
                    }));
                }
                for h in handles {
                    h.join().await;
                }
                sem.available()
            }
        });
        prop_assert_eq!(final_available, initial);
    }

    /// A mix of spawned sleeps always terminates with the clock at the
    /// maximum deadline (no lost wakeups, no stuck tasks).
    #[test]
    fn virtual_clock_ends_at_max_deadline(delays in proptest::collection::vec(0u64..10_000, 1..50)) {
        let mut sim = Simulation::new();
        let end = sim.run({
            let delays = delays.clone();
            async move {
                let handles: Vec<_> = delays
                    .iter()
                    .map(|&d| spawn(async move { sleep(Duration::from_nanos(d)).await }))
                    .collect();
                for h in handles {
                    h.join().await;
                }
                now().as_nanos()
            }
        });
        prop_assert_eq!(end, *delays.iter().max().unwrap());
    }
}

mod race_tests {
    use tapejoin_sim::{now, race2, sleep, timeout, Duration, Either, SimTime, Simulation};

    #[test]
    fn race_resolves_with_the_earlier_future() {
        let mut sim = Simulation::new();
        let winner = sim.run(async {
            race2(
                async {
                    sleep(Duration::from_secs(5)).await;
                    "slow"
                },
                async {
                    sleep(Duration::from_secs(2)).await;
                    "fast"
                },
            )
            .await
        });
        assert_eq!(winner, Either::Right("fast"));
    }

    #[test]
    fn race_tie_goes_to_the_left() {
        let mut sim = Simulation::new();
        let winner = sim.run(async {
            race2(
                async {
                    sleep(Duration::from_secs(1)).await;
                    1
                },
                async {
                    sleep(Duration::from_secs(1)).await;
                    2
                },
            )
            .await
        });
        assert_eq!(winner, Either::Left(1));
    }

    #[test]
    fn timeout_in_time_and_late() {
        let mut sim = Simulation::new();
        sim.run(async {
            let hit = timeout(Duration::from_secs(10), async {
                sleep(Duration::from_secs(1)).await;
                7u8
            })
            .await;
            assert_eq!(hit, Some(7));
            assert_eq!(now(), SimTime::ZERO + Duration::from_secs(1));

            let miss = timeout(Duration::from_secs(2), async {
                sleep(Duration::from_secs(60)).await;
                7u8
            })
            .await;
            assert_eq!(miss, None);
            assert_eq!(now(), SimTime::ZERO + Duration::from_secs(3));
        });
    }
}
