//! Device activity timelines: who was busy when.
//!
//! A [`Server`](crate::Server) can be given an [`ActivityLog`]; every
//! service interval is then recorded as `(start, end, label)`. Collected
//! across devices, the logs show exactly how much tape and disk work
//! overlapped — the difference between the sequential and concurrent
//! join methods made visible.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::{Duration, SimTime};

/// One busy interval on a device.
#[derive(Clone, Debug, PartialEq)]
pub struct Activity {
    /// Service start.
    pub start: SimTime,
    /// Service end.
    pub end: SimTime,
    /// Request label (e.g. `"read 64"`).
    pub label: String,
}

impl Activity {
    /// Length of the interval.
    pub fn duration(&self) -> Duration {
        self.end.duration_since(self.start)
    }
}

/// A shared, append-only log of busy intervals for one device.
#[derive(Clone, Default)]
pub struct ActivityLog {
    // lint:allow(L9, activity log shared by device tasks on one executor)
    entries: Rc<RefCell<Vec<Activity>>>,
}

impl ActivityLog {
    /// New empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one interval. Intervals must be appended in non-decreasing
    /// start order (FIFO servers do this naturally).
    pub fn record(&self, start: SimTime, end: SimTime, label: impl Into<String>) {
        let mut entries = self.entries.borrow_mut();
        if let Some(last) = entries.last() {
            assert!(
                start >= last.start,
                "activity log out of order: {start:?} after {:?}",
                last.start
            );
        }
        entries.push(Activity {
            start,
            end,
            label: label.into(),
        });
    }

    /// All recorded intervals.
    pub fn entries(&self) -> Vec<Activity> {
        self.entries.borrow().clone()
    }

    /// Number of intervals.
    pub fn len(&self) -> usize {
        self.entries.borrow().len()
    }

    /// `true` if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total busy time.
    pub fn busy(&self) -> Duration {
        self.entries.borrow().iter().map(|a| a.duration()).sum()
    }

    /// Render the log as one row of an ASCII Gantt chart covering
    /// `[0, span]` in `width` columns: `#` busy, `.` idle.
    pub fn gantt_row(&self, span: Duration, width: usize) -> String {
        assert!(width > 0 && !span.is_zero(), "degenerate gantt row");
        let mut row = vec!['.'; width];
        let scale = width as f64 / span.as_secs_f64();
        for a in self.entries.borrow().iter() {
            let lo = (a.start.as_secs_f64() * scale).floor() as usize;
            let hi = ((a.end.as_secs_f64() * scale).ceil() as usize).min(width);
            for cell in row.iter_mut().take(hi).skip(lo.min(width)) {
                *cell = '#';
            }
        }
        row.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_sums_busy_time() {
        let log = ActivityLog::new();
        log.record(SimTime::from_nanos(0), SimTime::from_nanos(10), "a");
        log.record(SimTime::from_nanos(20), SimTime::from_nanos(25), "b");
        assert_eq!(log.len(), 2);
        assert_eq!(log.busy(), Duration::from_nanos(15));
        assert_eq!(log.entries()[1].label, "b");
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn rejects_out_of_order_appends() {
        let log = ActivityLog::new();
        log.record(SimTime::from_nanos(10), SimTime::from_nanos(20), "a");
        log.record(SimTime::from_nanos(5), SimTime::from_nanos(8), "b");
    }

    #[test]
    fn gantt_row_marks_busy_cells() {
        let log = ActivityLog::new();
        log.record(SimTime::from_nanos(0), SimTime::from_nanos(50), "x");
        let row = log.gantt_row(Duration::from_nanos(100), 10);
        assert_eq!(row, "#####.....");
    }
}
