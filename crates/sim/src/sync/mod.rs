//! Async synchronization primitives for simulation tasks.
//!
//! All primitives are single-threaded (the executor runs on one host
//! thread) and strictly FIFO: waiters are served in arrival order, which
//! keeps simulations deterministic and starvation-free. None of them
//! advance the virtual clock by themselves — blocking on a semaphore takes
//! zero virtual time unless whoever releases it slept.

mod mpsc;
mod mutex;
mod notify;
mod oneshot;
mod semaphore;

pub use mpsc::{channel, Receiver, RecvError, SendError, Sender};
pub use mutex::{Mutex, MutexGuard};
pub use notify::Notify;
pub use oneshot::{oneshot, OneshotReceiver, OneshotSender};
pub use semaphore::{Permit, Semaphore};
