//! Bounded multi-producer single-consumer channel.
//!
//! The pipelines in the join methods (tape reader → hasher → disk writer →
//! join process) are wired with these channels; the bound is what turns a
//! chain of tasks into a *bounded-buffer* pipeline whose throughput is the
//! max of the stage service times, exactly the behaviour the paper's
//! double-buffering analysis assumes.
//!
//! lint:allow-file(L9, simulated channel for tasks on one cooperative executor; never crosses a real thread)

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct SendNode<T> {
    value: Option<T>,
    waker: Option<Waker>,
    cancelled: bool,
    done: bool,
}

struct State<T> {
    capacity: usize,
    buffer: VecDeque<T>,
    send_waiters: VecDeque<Rc<RefCell<SendNode<T>>>>,
    recv_waker: Option<Waker>,
    receiver_alive: bool,
    sender_count: usize,
}

impl<T> State<T> {
    /// Move values from parked senders into freed buffer slots, FIFO.
    fn promote(&mut self) {
        while self.buffer.len() < self.capacity {
            let Some(front) = self.send_waiters.front() else {
                break;
            };
            let mut node = front.borrow_mut();
            if node.cancelled {
                drop(node);
                self.send_waiters.pop_front();
                continue;
            }
            // lint:allow(L3, a parked sender owns its value until delivery)
            let v = node.value.take().expect("parked sender without value");
            node.done = true;
            if let Some(w) = node.waker.take() {
                w.wake();
            }
            drop(node);
            self.send_waiters.pop_front();
            self.buffer.push_back(v);
        }
    }

    fn wake_receiver(&mut self) {
        if let Some(w) = self.recv_waker.take() {
            w.wake();
        }
    }
}

/// Error returned by [`Sender::send`] when the receiver is gone; carries
/// the unsent value back.
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("channel receiver dropped")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// Error returned by [`Receiver::recv`]'s `Result` twin [`Receiver::try_recv`].
#[derive(Debug, PartialEq, Eq)]
pub enum RecvError {
    /// No value buffered right now.
    Empty,
    /// All senders dropped and the buffer is drained.
    Disconnected,
}

/// Create a bounded channel of the given capacity (> 0).
///
/// # Examples
///
/// ```
/// use tapejoin_sim::{spawn, sync::channel, Simulation};
///
/// let mut sim = Simulation::new();
/// let sum = sim.run(async {
///     let (tx, mut rx) = channel(2);
///     spawn(async move {
///         for i in 1..=5u32 {
///             tx.send(i).await.unwrap();
///         }
///     });
///     let mut sum = 0;
///     while let Some(v) = rx.recv().await {
///         sum += v;
///     }
///     sum
/// });
/// assert_eq!(sum, 15);
/// ```
pub fn channel<T>(capacity: usize) -> (Sender<T>, Receiver<T>) {
    assert!(capacity > 0, "mpsc channel capacity must be positive");
    let state = Rc::new(RefCell::new(State {
        capacity,
        buffer: VecDeque::with_capacity(capacity),
        send_waiters: VecDeque::new(),
        recv_waker: None,
        receiver_alive: true,
        sender_count: 1,
    }));
    (
        Sender {
            state: Rc::clone(&state),
        },
        Receiver { state },
    )
}

/// Sending half; clone for multiple producers.
pub struct Sender<T> {
    state: Rc<RefCell<State<T>>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.state.borrow_mut().sender_count += 1;
        Sender {
            state: Rc::clone(&self.state),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.sender_count -= 1;
        if st.sender_count == 0 {
            st.wake_receiver();
        }
    }
}

impl<T> Sender<T> {
    /// Send `value`, waiting for buffer space if the channel is full.
    pub fn send(&self, value: T) -> Send<'_, T> {
        Send {
            sender: self,
            value: Some(value),
            node: None,
        }
    }

    /// `true` once the receiving half has been dropped.
    pub fn is_closed(&self) -> bool {
        !self.state.borrow().receiver_alive
    }
}

/// Future returned by [`Sender::send`].
pub struct Send<'a, T> {
    sender: &'a Sender<T>,
    value: Option<T>,
    node: Option<Rc<RefCell<SendNode<T>>>>,
}

// `Send` holds no self-references, so it is safe to move after polling.
impl<T> Unpin for Send<'_, T> {}

impl<T> Future for Send<'_, T> {
    type Output = Result<(), SendError<T>>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let this = self.get_mut();
        if let Some(node) = &this.node {
            let mut n = node.borrow_mut();
            if n.done {
                return Poll::Ready(Ok(()));
            }
            if !this.sender.state.borrow().receiver_alive {
                // lint:allow(L3, a node unlinked from the queue still owns its undelivered value)
                let v = n.value.take().expect("undelivered value vanished");
                n.cancelled = true;
                return Poll::Ready(Err(SendError(v)));
            }
            n.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut st = this.sender.state.borrow_mut();
        let value = this
            .value
            .take()
            // lint:allow(L3, a send future completes at most once)
            .expect("send future polled after completion");
        if !st.receiver_alive {
            return Poll::Ready(Err(SendError(value)));
        }
        let queue_empty = !st.send_waiters.iter().any(|n| !n.borrow().cancelled);
        if queue_empty && st.buffer.len() < st.capacity {
            st.buffer.push_back(value);
            st.wake_receiver();
            return Poll::Ready(Ok(()));
        }
        let node = Rc::new(RefCell::new(SendNode {
            value: Some(value),
            waker: Some(cx.waker().clone()),
            cancelled: false,
            done: false,
        }));
        st.send_waiters.push_back(Rc::clone(&node));
        this.node = Some(node);
        Poll::Pending
    }
}

impl<T> Drop for Send<'_, T> {
    fn drop(&mut self) {
        if let Some(node) = self.node.take() {
            node.borrow_mut().cancelled = true;
        }
    }
}

/// Receiving half (single consumer).
pub struct Receiver<T> {
    state: Rc<RefCell<State<T>>>,
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.receiver_alive = false;
        // Wake every parked sender so they observe the closure.
        for node in st.send_waiters.iter() {
            if let Some(w) = node.borrow_mut().waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Receiver<T> {
    /// Receive the next value; `None` once all senders are dropped and the
    /// buffer is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { receiver: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Result<T, RecvError> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.buffer.pop_front() {
            st.promote();
            return Ok(v);
        }
        st.promote();
        if let Some(v) = st.buffer.pop_front() {
            st.promote();
            return Ok(v);
        }
        if st.sender_count == 0 {
            Err(RecvError::Disconnected)
        } else {
            Err(RecvError::Empty)
        }
    }

    /// Number of values currently buffered.
    pub fn len(&self) -> usize {
        self.state.borrow().buffer.len()
    }

    /// `true` when no value is buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    receiver: &'a mut Receiver<T>,
}

impl<T> Unpin for Recv<'_, T> {}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let this = self.get_mut();
        match this.receiver.try_recv() {
            Ok(v) => Poll::Ready(Some(v)),
            Err(RecvError::Disconnected) => Poll::Ready(None),
            Err(RecvError::Empty) => {
                this.receiver.state.borrow_mut().recv_waker = Some(cx.waker().clone());
                Poll::Pending
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Duration, Simulation};

    #[test]
    fn values_flow_in_order() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, mut rx) = channel(4);
            spawn(async move {
                for i in 0..10 {
                    tx.send(i).await.unwrap();
                }
            });
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got, (0..10).collect::<Vec<_>>());
        });
    }

    #[test]
    fn bounded_sender_blocks_until_consumed() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, mut rx) = channel(1);
            let producer = spawn(async move {
                tx.send(1u32).await.unwrap();
                tx.send(2).await.unwrap(); // must block until the consumer reads
                now()
            });
            sleep(Duration::from_secs(3)).await;
            assert_eq!(rx.recv().await, Some(1));
            let unblocked_at = producer.join().await;
            assert_eq!(
                unblocked_at,
                crate::SimTime::ZERO + crate::Duration::from_secs(3)
            );
            assert_eq!(rx.recv().await, Some(2));
        });
    }

    #[test]
    fn recv_returns_none_after_all_senders_drop() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, mut rx) = channel::<u8>(2);
            let tx2 = tx.clone();
            drop(tx);
            tx2.send(9).await.unwrap();
            drop(tx2);
            assert_eq!(rx.recv().await, Some(9));
            assert_eq!(rx.recv().await, None);
        });
    }

    #[test]
    fn send_fails_when_receiver_dropped() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, rx) = channel::<u8>(1);
            drop(rx);
            let err = tx.send(7).await.unwrap_err();
            assert_eq!(err.0, 7);
            assert!(tx.is_closed());
        });
    }

    #[test]
    fn parked_sender_errors_on_receiver_drop() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, mut rx) = channel::<u8>(1);
            tx.send(1).await.unwrap();
            let h = spawn(async move { tx.send(2).await });
            sleep(Duration::from_secs(1)).await;
            assert_eq!(rx.try_recv(), Ok(1));
            drop(rx);
            let res = h.join().await;
            assert!(matches!(res, Ok(()) | Err(SendError(2))));
        });
    }

    #[test]
    fn try_recv_reports_empty_and_disconnected() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, mut rx) = channel::<u8>(1);
            assert_eq!(rx.try_recv(), Err(RecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(RecvError::Disconnected));
        });
    }

    #[test]
    fn multiple_producers_interleave_fifo() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, mut rx) = channel(1);
            for p in 0..3u32 {
                let tx = tx.clone();
                spawn(async move {
                    for i in 0..3u32 {
                        tx.send(p * 10 + i).await.unwrap();
                    }
                });
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            assert_eq!(got.len(), 9);
            // Per-producer order is preserved.
            for p in 0..3u32 {
                let seq: Vec<_> = got.iter().filter(|v| **v / 10 == p).collect();
                assert_eq!(seq, vec![&(p * 10), &(p * 10 + 1), &(p * 10 + 2)]);
            }
        });
    }
}
