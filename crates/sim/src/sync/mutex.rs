//! An async mutex built on the FIFO semaphore.
//!
//! Because the simulation is single-threaded, a mutex is only needed to
//! serialize critical sections that span an `.await` (e.g. a device whose
//! whole request cycle must be exclusive). The guard exposes the value via
//! closures rather than `Deref` so no `RefCell` borrow is ever held across
//! an await point.
//!
//! lint:allow-file(L9, simulated mutex for tasks on one cooperative executor; never crosses a real thread)

use std::cell::RefCell;
use std::rc::Rc;

use super::semaphore::{Permit, Semaphore};

/// FIFO async mutex.
pub struct Mutex<T> {
    sem: Semaphore,
    value: Rc<RefCell<T>>,
}

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            sem: Semaphore::new(1),
            value: Rc::new(RefCell::new(value)),
        }
    }

    /// Acquire the lock, waiting FIFO behind earlier lockers.
    pub async fn lock(&self) -> MutexGuard<T> {
        let permit = self.sem.acquire(1).await;
        MutexGuard {
            _permit: permit,
            value: Rc::clone(&self.value),
        }
    }

    /// Acquire without waiting, if free and nothing is queued.
    pub fn try_lock(&self) -> Option<MutexGuard<T>> {
        self.sem.try_acquire(1).map(|permit| MutexGuard {
            _permit: permit,
            value: Rc::clone(&self.value),
        })
    }
}

/// Lock guard; the mutex unlocks when this is dropped.
pub struct MutexGuard<T> {
    _permit: Permit,
    value: Rc<RefCell<T>>,
}

impl<T> MutexGuard<T> {
    /// Read the protected value.
    pub fn with<R>(&self, f: impl FnOnce(&T) -> R) -> R {
        f(&self.value.borrow())
    }

    /// Mutate the protected value.
    pub fn with_mut<R>(&mut self, f: impl FnOnce(&mut T) -> R) -> R {
        f(&mut self.value.borrow_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Duration, Simulation};

    #[test]
    fn lock_serializes_critical_sections() {
        let mut sim = Simulation::new();
        sim.run(async {
            let m = Rc::new(Mutex::new(0u32));
            let mut handles = Vec::new();
            for _ in 0..4 {
                let m = Rc::clone(&m);
                handles.push(spawn(async move {
                    let mut g = m.lock().await;
                    let v = g.with(|v| *v);
                    // Hold the lock across an await: without mutual
                    // exclusion every task would read 0.
                    sleep(Duration::from_secs(1)).await;
                    g.with_mut(|x| *x = v + 1);
                }));
            }
            for h in handles {
                h.join().await;
            }
            assert_eq!(m.lock().await.with(|v| *v), 4);
            assert_eq!(now(), crate::SimTime::ZERO + crate::Duration::from_secs(4));
        });
    }

    #[test]
    fn try_lock_contended_fails() {
        let mut sim = Simulation::new();
        sim.run(async {
            let m = Mutex::new(());
            let g = m.lock().await;
            assert!(m.try_lock().is_none());
            drop(g);
            assert!(m.try_lock().is_some());
        });
    }
}
