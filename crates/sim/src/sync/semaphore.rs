//! A counting semaphore with FIFO fairness and multi-permit acquisition.
//!
//! This is the workhorse of the buffering techniques in `tapejoin-buffer`:
//! free block slots in a circular or interleaved double buffer are permits,
//! producers acquire slots before writing and consumers release them after
//! reading. FIFO ordering means a large request parked at the head is not
//! starved by a stream of small ones (no barging).
//!
//! lint:allow-file(L9, simulated semaphore for tasks on one cooperative executor; never crosses a real thread)

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct WaitNode {
    amount: u64,
    granted: bool,
    cancelled: bool,
    waker: Option<Waker>,
}

struct State {
    permits: u64,
    waiters: VecDeque<Rc<RefCell<WaitNode>>>,
}

impl State {
    /// Hand permits to queued waiters, strictly front-to-back.
    fn grant(&mut self) {
        while let Some(front) = self.waiters.front() {
            let mut node = front.borrow_mut();
            if node.cancelled {
                drop(node);
                self.waiters.pop_front();
                continue;
            }
            if node.amount > self.permits {
                break;
            }
            self.permits -= node.amount;
            node.granted = true;
            if let Some(w) = node.waker.take() {
                w.wake();
            }
            drop(node);
            self.waiters.pop_front();
        }
    }
}

/// A FIFO counting semaphore. Cheap to clone (shared handle).
///
/// # Examples
///
/// ```
/// use tapejoin_sim::{sync::Semaphore, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.run(async {
///     let slots = Semaphore::new(4);
///     let grant = slots.acquire(3).await;
///     assert_eq!(slots.available(), 1);
///     drop(grant); // permits return on drop
///     assert_eq!(slots.available(), 4);
/// });
/// ```
#[derive(Clone)]
pub struct Semaphore {
    state: Rc<RefCell<State>>,
}

impl Semaphore {
    /// Create a semaphore holding `permits` initial permits.
    pub fn new(permits: u64) -> Self {
        Semaphore {
            state: Rc::new(RefCell::new(State {
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Permits currently available (not counting queued waiters).
    pub fn available(&self) -> u64 {
        self.state.borrow().permits
    }

    /// Number of tasks waiting for permits.
    pub fn waiters(&self) -> usize {
        self.state
            .borrow()
            .waiters
            .iter()
            .filter(|n| !n.borrow().cancelled)
            .count()
    }

    /// Acquire `amount` permits, waiting FIFO if necessary. The returned
    /// [`Permit`] releases them on drop unless [`Permit::forget`] is called.
    pub fn acquire(&self, amount: u64) -> Acquire {
        Acquire {
            sem: self.clone(),
            amount,
            node: None,
        }
    }

    /// Try to take `amount` permits without waiting. Fails (without queue
    /// jumping) if anything is queued ahead or not enough permits remain.
    pub fn try_acquire(&self, amount: u64) -> Option<Permit> {
        let mut st = self.state.borrow_mut();
        let blocked = st.waiters.iter().any(|n| !n.borrow().cancelled);
        if !blocked && st.permits >= amount {
            st.permits -= amount;
            Some(Permit {
                sem: self.clone(),
                amount,
            })
        } else {
            None
        }
    }

    /// Return `amount` permits to the pool (e.g. to model space reclaimed
    /// outside an RAII scope, paired with [`Permit::forget`]).
    pub fn add_permits(&self, amount: u64) {
        let mut st = self.state.borrow_mut();
        st.permits = st
            .permits
            .checked_add(amount)
            // lint:allow(L3, permits are bounded by capacity, so release cannot overflow)
            .expect("semaphore permit overflow");
        st.grant();
    }
}

/// RAII grant of semaphore permits.
pub struct Permit {
    sem: Semaphore,
    amount: u64,
}

impl Permit {
    /// Number of permits held.
    pub fn amount(&self) -> u64 {
        self.amount
    }

    /// Leak the permits: they are *not* returned on drop. Use when the
    /// release happens through [`Semaphore::add_permits`] at another site.
    pub fn forget(mut self) {
        self.amount = 0;
    }

    /// Split off `amount` permits into a separate [`Permit`], so portions
    /// of a grant can be released independently. Panics if `amount`
    /// exceeds what is held.
    pub fn split(&mut self, amount: u64) -> Permit {
        assert!(amount <= self.amount, "Permit::split: not enough permits");
        self.amount -= amount;
        Permit {
            sem: self.sem.clone(),
            amount,
        }
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if self.amount > 0 {
            self.sem.add_permits(self.amount);
        }
    }
}

/// Future returned by [`Semaphore::acquire`].
pub struct Acquire {
    sem: Semaphore,
    amount: u64,
    node: Option<Rc<RefCell<WaitNode>>>,
}

impl Future for Acquire {
    type Output = Permit;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Permit> {
        let this = &mut *self;
        if let Some(node) = &this.node {
            let mut n = node.borrow_mut();
            if n.granted {
                n.granted = false; // consumed; Drop must not re-release
                drop(n);
                this.node = None;
                return Poll::Ready(Permit {
                    sem: this.sem.clone(),
                    amount: this.amount,
                });
            }
            n.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut st = this.sem.state.borrow_mut();
        let blocked = st.waiters.iter().any(|n| !n.borrow().cancelled);
        if !blocked && st.permits >= this.amount {
            st.permits -= this.amount;
            return Poll::Ready(Permit {
                sem: this.sem.clone(),
                amount: this.amount,
            });
        }
        let node = Rc::new(RefCell::new(WaitNode {
            amount: this.amount,
            granted: false,
            cancelled: false,
            waker: Some(cx.waker().clone()),
        }));
        st.waiters.push_back(Rc::clone(&node));
        this.node = Some(node);
        Poll::Pending
    }
}

impl Drop for Acquire {
    fn drop(&mut self) {
        if let Some(node) = self.node.take() {
            let mut n = node.borrow_mut();
            if n.granted {
                // Granted but never observed: return the permits.
                drop(n);
                self.sem.add_permits(self.amount);
            } else {
                n.cancelled = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Duration, Simulation};
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn immediate_acquire_when_available() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(3);
            let p = sem.acquire(2).await;
            assert_eq!(sem.available(), 1);
            drop(p);
            assert_eq!(sem.available(), 3);
        });
    }

    #[test]
    fn waits_until_released() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(1);
            let p = sem.acquire(1).await;
            let sem2 = sem.clone();
            let waiter = spawn(async move {
                let _p = sem2.acquire(1).await;
                now()
            });
            sleep(Duration::from_secs(5)).await;
            drop(p);
            let acquired_at = waiter.join().await;
            assert_eq!(
                acquired_at,
                crate::SimTime::ZERO + crate::Duration::from_secs(5)
            );
        });
    }

    #[test]
    fn fifo_no_barging() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(0);
            let order = Rc::new(RefCell::new(Vec::new()));
            // First waiter wants 3, second wants 1. Releasing 1 must not
            // let the small request jump the queue.
            let (s1, o1) = (sem.clone(), Rc::clone(&order));
            let h1 = spawn(async move {
                let _p = s1.acquire(3).await;
                o1.borrow_mut().push("big");
            });
            crate::yield_now().await;
            let (s2, o2) = (sem.clone(), Rc::clone(&order));
            let h2 = spawn(async move {
                let _p = s2.acquire(1).await;
                o2.borrow_mut().push("small");
            });
            crate::yield_now().await;
            sem.add_permits(1);
            crate::yield_now().await;
            assert!(order.borrow().is_empty(), "small barged past big");
            sem.add_permits(2);
            h1.join().await;
            h2.join().await;
            assert_eq!(*order.borrow(), vec!["big", "small"]);
        });
    }

    #[test]
    fn try_acquire_respects_queue() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(2);
            let sem2 = sem.clone();
            let _h = spawn(async move {
                let _p = sem2.acquire(5).await; // parks
            });
            crate::yield_now().await;
            // 2 permits are free but a waiter is queued: no barging.
            assert!(sem.try_acquire(1).is_none());
        });
    }

    #[test]
    fn cancelled_waiter_is_skipped() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(0);
            let sem2 = sem.clone();
            let h = spawn(async move {
                let acq = sem2.acquire(10);
                // Race the acquire against a timer; the timer wins and the
                // acquire future is dropped (cancelled).
                let sleep_fut = sleep(Duration::from_secs(1));
                let ((), ()) = RaceDone(Box::pin(acq), Box::pin(sleep_fut)).await;
            });
            sleep(Duration::from_secs(2)).await;
            h.join().await;
            // The cancelled waiter must not absorb these permits.
            sem.add_permits(1);
            assert!(sem.try_acquire(1).is_some());
        });
    }

    /// Polls A and B; completes when B completes (dropping A).
    struct RaceDone(
        std::pin::Pin<Box<Acquire>>,
        std::pin::Pin<Box<dyn std::future::Future<Output = ()>>>,
    );
    impl std::future::Future for RaceDone {
        type Output = ((), ());
        fn poll(
            mut self: std::pin::Pin<&mut Self>,
            cx: &mut std::task::Context<'_>,
        ) -> std::task::Poll<((), ())> {
            let _ = self.0.as_mut().poll(cx);
            match self.1.as_mut().poll(cx) {
                std::task::Poll::Ready(()) => std::task::Poll::Ready(((), ())),
                std::task::Poll::Pending => std::task::Poll::Pending,
            }
        }
    }

    #[test]
    fn permit_split_releases_independently() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(10);
            let mut p = sem.acquire(6).await;
            let half = p.split(2);
            drop(half);
            assert_eq!(sem.available(), 6);
            drop(p);
            assert_eq!(sem.available(), 10);
        });
    }

    #[test]
    fn forget_leaks_permits() {
        let mut sim = Simulation::new();
        sim.run(async {
            let sem = Semaphore::new(4);
            sem.acquire(3).await.forget();
            assert_eq!(sem.available(), 1);
            sem.add_permits(3); // manual release elsewhere
            assert_eq!(sem.available(), 4);
        });
    }
}
