//! One-shot value handoff between two tasks.
//!
//! lint:allow-file(L9, simulated oneshot for tasks on one cooperative executor; never crosses a real thread)

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct State<T> {
    value: Option<T>,
    waker: Option<Waker>,
    sender_dropped: bool,
}

/// Create a connected oneshot pair.
pub fn oneshot<T>() -> (OneshotSender<T>, OneshotReceiver<T>) {
    let state = Rc::new(RefCell::new(State {
        value: None,
        waker: None,
        sender_dropped: false,
    }));
    (
        OneshotSender {
            state: Rc::clone(&state),
        },
        OneshotReceiver { state },
    )
}

/// Sending half; consumes itself on send.
pub struct OneshotSender<T> {
    state: Rc<RefCell<State<T>>>,
}

impl<T> OneshotSender<T> {
    /// Deliver `value` to the receiver. Returns `Err(value)` if the
    /// receiver was dropped.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut st = self.state.borrow_mut();
        if Rc::strong_count(&self.state) == 1 {
            return Err(value);
        }
        st.value = Some(value);
        if let Some(w) = st.waker.take() {
            w.wake();
        }
        Ok(())
    }
}

impl<T> Drop for OneshotSender<T> {
    fn drop(&mut self) {
        let mut st = self.state.borrow_mut();
        st.sender_dropped = true;
        if let Some(w) = st.waker.take() {
            w.wake();
        }
    }
}

/// Receiving half: a future resolving to `Some(value)` or `None` if the
/// sender was dropped without sending.
pub struct OneshotReceiver<T> {
    state: Rc<RefCell<State<T>>>,
}

impl<T> Future for OneshotReceiver<T> {
    type Output = Option<T>;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Option<T>> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.value.take() {
            return Poll::Ready(Some(v));
        }
        if st.sender_dropped {
            return Poll::Ready(None);
        }
        st.waker = Some(cx.waker().clone());
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Duration, Simulation};

    #[test]
    fn value_is_delivered() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, rx) = oneshot();
            spawn(async move {
                sleep(Duration::from_secs(2)).await;
                tx.send(99u32).unwrap();
            });
            assert_eq!(rx.await, Some(99));
            assert_eq!(now(), crate::SimTime::ZERO + crate::Duration::from_secs(2));
        });
    }

    #[test]
    fn dropped_sender_yields_none() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, rx) = oneshot::<u8>();
            drop(tx);
            assert_eq!(rx.await, None);
        });
    }

    #[test]
    fn dropped_receiver_fails_send() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tx, rx) = oneshot::<u8>();
            drop(rx);
            assert_eq!(tx.send(1), Err(1));
        });
    }
}
