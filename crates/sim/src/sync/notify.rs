//! Wake-up notification primitive (edge-triggered with one stored permit,
//! like Tokio's `Notify`).
//!
//! lint:allow-file(L9, simulated notifier for tasks on one cooperative executor; never crosses a real thread)

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

struct WaitNode {
    notified: bool,
    waker: Option<Waker>,
}

struct State {
    /// One permit is stored when `notify_one` fires with nobody waiting, so
    /// the next `notified().await` completes immediately (no lost wakeups).
    stored_permit: bool,
    waiters: VecDeque<Rc<RefCell<WaitNode>>>,
}

/// Notify one or all waiting tasks.
#[derive(Clone)]
pub struct Notify {
    state: Rc<RefCell<State>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Create a notifier with no stored permit.
    pub fn new() -> Self {
        Notify {
            state: Rc::new(RefCell::new(State {
                stored_permit: false,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Wake the oldest waiter, or store a permit if none is waiting.
    pub fn notify_one(&self) {
        let mut st = self.state.borrow_mut();
        while let Some(node) = st.waiters.pop_front() {
            let mut n = node.borrow_mut();
            if n.waker.is_none() && !n.notified {
                continue; // cancelled waiter
            }
            n.notified = true;
            if let Some(w) = n.waker.take() {
                w.wake();
            }
            return;
        }
        st.stored_permit = true;
    }

    /// Wake every current waiter (does not store a permit).
    pub fn notify_all(&self) {
        let mut st = self.state.borrow_mut();
        for node in st.waiters.drain(..) {
            let mut n = node.borrow_mut();
            n.notified = true;
            if let Some(w) = n.waker.take() {
                w.wake();
            }
        }
    }

    /// Wait for a notification.
    pub fn notified(&self) -> Notified {
        Notified {
            notify: self.clone(),
            node: None,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    notify: Notify,
    node: Option<Rc<RefCell<WaitNode>>>,
}

impl Future for Notified {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let this = self.get_mut();
        if let Some(node) = &this.node {
            let mut n = node.borrow_mut();
            if n.notified {
                drop(n);
                this.node = None; // consumed; Drop must not re-notify
                return Poll::Ready(());
            }
            n.waker = Some(cx.waker().clone());
            return Poll::Pending;
        }
        let mut st = this.notify.state.borrow_mut();
        if st.stored_permit {
            st.stored_permit = false;
            return Poll::Ready(());
        }
        let node = Rc::new(RefCell::new(WaitNode {
            notified: false,
            waker: Some(cx.waker().clone()),
        }));
        st.waiters.push_back(Rc::clone(&node));
        this.node = Some(node);
        Poll::Pending
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        if let Some(node) = self.node.take() {
            let mut n = node.borrow_mut();
            if n.notified {
                // Consumed a notification without observing it; pass it on.
                drop(n);
                self.notify.notify_one();
            } else {
                n.waker = None; // mark cancelled
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{now, sleep, spawn, Duration, Simulation};

    #[test]
    fn stored_permit_prevents_lost_wakeup() {
        let mut sim = Simulation::new();
        sim.run(async {
            let n = Notify::new();
            n.notify_one(); // nobody waiting: store
            n.notified().await; // completes immediately
        });
    }

    #[test]
    fn notify_one_wakes_oldest() {
        let mut sim = Simulation::new();
        sim.run(async {
            let n = Notify::new();
            let n1 = n.clone();
            let h1 = spawn(async move {
                n1.notified().await;
                now()
            });
            crate::yield_now().await;
            let n2 = n.clone();
            let h2 = spawn(async move {
                n2.notified().await;
                now()
            });
            sleep(Duration::from_secs(1)).await;
            n.notify_one();
            sleep(Duration::from_secs(1)).await;
            n.notify_one();
            assert_eq!(
                h1.join().await,
                crate::SimTime::ZERO + crate::Duration::from_secs(1)
            );
            assert_eq!(
                h2.join().await,
                crate::SimTime::ZERO + crate::Duration::from_secs(2)
            );
        });
    }

    #[test]
    fn notify_all_wakes_everyone() {
        let mut sim = Simulation::new();
        sim.run(async {
            let n = Notify::new();
            let mut handles = Vec::new();
            for _ in 0..5 {
                let n = n.clone();
                handles.push(spawn(async move {
                    n.notified().await;
                    now()
                }));
            }
            sleep(Duration::from_secs(3)).await;
            n.notify_all();
            for h in handles {
                assert_eq!(
                    h.join().await,
                    crate::SimTime::ZERO + crate::Duration::from_secs(3)
                );
            }
        });
    }
}
