//! Time-series recording, used e.g. for the disk-space-utilization plot of
//! Figure 4 in the paper.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;

/// One sample in a series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// When the sample was taken.
    pub at: SimTime,
    /// The sampled value.
    pub value: f64,
}

/// Why a sample could not be appended to a [`Trace`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// The sample's time precedes the previous sample's time. Carries
    /// `(attempted, previous)`.
    OutOfOrder {
        /// The rejected sample's time.
        attempted: SimTime,
        /// The time of the last recorded sample.
        previous: SimTime,
    },
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::OutOfOrder {
                attempted,
                previous,
            } => write!(
                f,
                "sample at {attempted:?} is before previous sample at {previous:?}"
            ),
        }
    }
}

impl std::error::Error for TraceError {}

/// A named series of `(time, value)` samples. Cheap to clone (shared).
#[derive(Clone)]
pub struct Trace {
    name: Rc<str>, // lint:allow(L9, trace handles shared within one executor; merged post-run)
    points: Rc<RefCell<Vec<TracePoint>>>,
}

impl Trace {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: Rc::from(name.into().into_boxed_str()),
            points: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record `value` at the current virtual time (requires an active
    /// simulation).
    pub fn record_now(&self, value: f64) {
        self.record(crate::now(), value);
    }

    /// Record `value` at an explicit instant. Samples must be appended in
    /// non-decreasing time order; panics otherwise. Callers that can
    /// legitimately observe time regressions (e.g. probes replayed during
    /// fault-retry rewinds) should use [`Trace::try_record`] instead.
    pub fn record(&self, at: SimTime, value: f64) {
        if let Err(TraceError::OutOfOrder {
            attempted,
            previous,
        }) = self.try_record(at, value)
        {
            // lint:allow(L3, record() documents the panic; time-regressing callers use try_record)
            panic!(
                "trace '{}': sample at {attempted:?} is before previous sample at {previous:?}",
                self.name
            );
        }
    }

    /// Record `value` at an explicit instant, returning
    /// [`TraceError::OutOfOrder`] instead of panicking when `at` precedes
    /// the previous sample (the sample is then dropped).
    pub fn try_record(&self, at: SimTime, value: f64) -> Result<(), TraceError> {
        let mut pts = self.points.borrow_mut();
        if let Some(last) = pts.last() {
            if at < last.at {
                return Err(TraceError::OutOfOrder {
                    attempted: at,
                    previous: last.at,
                });
            }
        }
        pts.push(TracePoint { at, value });
        Ok(())
    }

    /// Time of the most recent sample, if any.
    pub fn last_at(&self) -> Option<SimTime> {
        self.points.borrow().last().map(|p| p.at)
    }

    /// All samples recorded so far.
    pub fn points(&self) -> Vec<TracePoint> {
        self.points.borrow().clone()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.borrow().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak sampled value (0 if empty).
    pub fn max_value(&self) -> f64 {
        self.points
            .borrow()
            .iter()
            .map(|p| p.value)
            .fold(0.0, f64::max)
    }

    /// Time-weighted mean of the series over its recorded span, treating
    /// each sample as holding until the next one (step function). Returns
    /// 0 for fewer than two samples.
    pub fn time_weighted_mean(&self) -> f64 {
        let pts = self.points.borrow();
        if pts.len() < 2 {
            return 0.0;
        }
        let mut area = 0.0;
        for pair in pts.windows(2) {
            let dt = pair[1].at.duration_since(pair[0].at).as_secs_f64();
            area += pair[0].value * dt;
        }
        let span = pts[pts.len() - 1]
            .at
            .duration_since(pts[0].at)
            .as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            area / span
        }
    }

    /// Downsample to at most `n` evenly spaced points (for printing).
    /// Always retains both the first and the final sample, so a plot's
    /// right edge shows the series' true end state.
    pub fn downsample(&self, n: usize) -> Vec<TracePoint> {
        let pts = self.points.borrow();
        if pts.len() <= n || n == 0 {
            return pts.clone();
        }
        if n == 1 {
            return vec![pts[pts.len() - 1]];
        }
        // Map output index i to i*(len-1)/(n-1): monotone, hits index 0
        // at i = 0 and len-1 at i = n-1.
        (0..n).map(|i| pts[i * (pts.len() - 1) / (n - 1)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let t = Trace::new("util");
        t.record(SimTime::from_nanos(0), 1.0);
        t.record(SimTime::from_nanos(10), 3.0);
        t.record(SimTime::from_nanos(20), 2.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.max_value().to_bits(), 3.0f64.to_bits());
        // (1.0*10 + 3.0*10) / 20
        assert!((t.time_weighted_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before previous sample")]
    fn rejects_time_travel() {
        let t = Trace::new("x");
        t.record(SimTime::from_nanos(5), 0.0);
        t.record(SimTime::from_nanos(4), 0.0);
    }

    #[test]
    fn try_record_reports_out_of_order_without_panicking() {
        let t = Trace::new("x");
        assert_eq!(t.try_record(SimTime::from_nanos(5), 1.0), Ok(()));
        assert_eq!(
            t.try_record(SimTime::from_nanos(4), 2.0),
            Err(TraceError::OutOfOrder {
                attempted: SimTime::from_nanos(4),
                previous: SimTime::from_nanos(5),
            })
        );
        // The rejected sample is dropped; equal times are accepted.
        assert_eq!(t.try_record(SimTime::from_nanos(5), 3.0), Ok(()));
        assert_eq!(t.len(), 2);
        assert_eq!(t.last_at(), Some(SimTime::from_nanos(5)));
        let err = TraceError::OutOfOrder {
            attempted: SimTime::from_nanos(4),
            previous: SimTime::from_nanos(5),
        };
        assert!(err.to_string().contains("before previous sample"));
    }

    #[test]
    fn downsample_keeps_bounds() {
        let t = Trace::new("x");
        for i in 0..100 {
            t.record(SimTime::from_nanos(i), i as f64);
        }
        let d = t.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(
            d[0].value.to_bits(),
            0.0f64.to_bits(),
            "first sample must survive"
        );
        assert_eq!(
            d[9].value.to_bits(),
            99.0f64.to_bits(),
            "final sample must survive"
        );
        // Awkward divisors too: both endpoints, always.
        for n in [1usize, 2, 3, 7, 11, 13, 64, 99] {
            let d = t.downsample(n);
            assert_eq!(d.len(), n, "asked for {n}");
            assert_eq!(
                d[n - 1].value.to_bits(),
                99.0f64.to_bits(),
                "final sample lost at n = {n}"
            );
            if n > 1 {
                assert_eq!(
                    d[0].value.to_bits(),
                    0.0f64.to_bits(),
                    "first sample lost at n = {n}"
                );
            }
            // Strictly increasing (no duplicated indices).
            for pair in d.windows(2) {
                assert!(pair[1].at > pair[0].at, "duplicate sample at n = {n}");
            }
        }
        // n >= len returns the series unchanged.
        assert_eq!(t.downsample(100).len(), 100);
        assert_eq!(t.downsample(500).len(), 100);
    }
}
