//! Time-series recording, used e.g. for the disk-space-utilization plot of
//! Figure 4 in the paper.

use std::cell::RefCell;
use std::rc::Rc;

use crate::time::SimTime;

/// One sample in a series.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TracePoint {
    /// When the sample was taken.
    pub at: SimTime,
    /// The sampled value.
    pub value: f64,
}

/// A named series of `(time, value)` samples. Cheap to clone (shared).
#[derive(Clone)]
pub struct Trace {
    name: Rc<str>,
    points: Rc<RefCell<Vec<TracePoint>>>,
}

impl Trace {
    /// Create an empty series.
    pub fn new(name: impl Into<String>) -> Self {
        Trace {
            name: Rc::from(name.into().into_boxed_str()),
            points: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Series name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Record `value` at the current virtual time (requires an active
    /// simulation).
    pub fn record_now(&self, value: f64) {
        self.record(crate::now(), value);
    }

    /// Record `value` at an explicit instant. Samples must be appended in
    /// non-decreasing time order.
    pub fn record(&self, at: SimTime, value: f64) {
        let mut pts = self.points.borrow_mut();
        if let Some(last) = pts.last() {
            assert!(
                at >= last.at,
                "trace '{}': sample at {at:?} is before previous sample at {:?}",
                self.name,
                last.at
            );
        }
        pts.push(TracePoint { at, value });
    }

    /// All samples recorded so far.
    pub fn points(&self) -> Vec<TracePoint> {
        self.points.borrow().clone()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.borrow().len()
    }

    /// `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Peak sampled value (0 if empty).
    pub fn max_value(&self) -> f64 {
        self.points
            .borrow()
            .iter()
            .map(|p| p.value)
            .fold(0.0, f64::max)
    }

    /// Time-weighted mean of the series over its recorded span, treating
    /// each sample as holding until the next one (step function). Returns
    /// 0 for fewer than two samples.
    pub fn time_weighted_mean(&self) -> f64 {
        let pts = self.points.borrow();
        if pts.len() < 2 {
            return 0.0;
        }
        let mut area = 0.0;
        for pair in pts.windows(2) {
            let dt = pair[1].at.duration_since(pair[0].at).as_secs_f64();
            area += pair[0].value * dt;
        }
        let span = pts[pts.len() - 1]
            .at
            .duration_since(pts[0].at)
            .as_secs_f64();
        if span == 0.0 {
            0.0
        } else {
            area / span
        }
    }

    /// Downsample to at most `n` evenly spaced points (for printing).
    /// Always retains both the first and the final sample, so a plot's
    /// right edge shows the series' true end state.
    pub fn downsample(&self, n: usize) -> Vec<TracePoint> {
        let pts = self.points.borrow();
        if pts.len() <= n || n == 0 {
            return pts.clone();
        }
        if n == 1 {
            return vec![pts[pts.len() - 1]];
        }
        // Map output index i to i*(len-1)/(n-1): monotone, hits index 0
        // at i = 0 and len-1 at i = n-1.
        (0..n).map(|i| pts[i * (pts.len() - 1) / (n - 1)]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_reports() {
        let t = Trace::new("util");
        t.record(SimTime::from_nanos(0), 1.0);
        t.record(SimTime::from_nanos(10), 3.0);
        t.record(SimTime::from_nanos(20), 2.0);
        assert_eq!(t.len(), 3);
        assert_eq!(t.max_value(), 3.0);
        // (1.0*10 + 3.0*10) / 20
        assert!((t.time_weighted_mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "before previous sample")]
    fn rejects_time_travel() {
        let t = Trace::new("x");
        t.record(SimTime::from_nanos(5), 0.0);
        t.record(SimTime::from_nanos(4), 0.0);
    }

    #[test]
    fn downsample_keeps_bounds() {
        let t = Trace::new("x");
        for i in 0..100 {
            t.record(SimTime::from_nanos(i), i as f64);
        }
        let d = t.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].value, 0.0, "first sample must survive");
        assert_eq!(d[9].value, 99.0, "final sample must survive");
        // Awkward divisors too: both endpoints, always.
        for n in [1usize, 2, 3, 7, 11, 13, 64, 99] {
            let d = t.downsample(n);
            assert_eq!(d.len(), n, "asked for {n}");
            assert_eq!(d[n - 1].value, 99.0, "final sample lost at n = {n}");
            if n > 1 {
                assert_eq!(d[0].value, 0.0, "first sample lost at n = {n}");
            }
            // Strictly increasing (no duplicated indices).
            for pair in d.windows(2) {
                assert!(pair[1].at > pair[0].at, "duplicate sample at n = {n}");
            }
        }
        // n >= len returns the series unchanged.
        assert_eq!(t.downsample(100).len(), 100);
        assert_eq!(t.downsample(500).len(), 100);
    }
}
