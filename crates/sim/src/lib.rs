//! `tapejoin-sim` — a deterministic, single-threaded discrete-event
//! simulation (DES) kernel with `async`/`await` ergonomics.
//!
//! The tertiary-join algorithms in the `tapejoin` crate are written as
//! ordinary async Rust: they issue I/O requests against simulated tape and
//! disk devices and `await` their completion. This crate supplies the
//! executor that drives those futures in *virtual time*: awaiting a device
//! advances the simulation clock by the modelled service time instead of
//! blocking the host. Requests issued to *different* devices overlap in
//! virtual time, which is exactly the disk/tape I/O parallelism the paper's
//! concurrent join methods exploit.
//!
//! Design points:
//!
//! * **Deterministic.** One host thread, a totally ordered event queue
//!   (time, then insertion sequence), FIFO wakeups everywhere. The same
//!   program always observes the same interleaving, so join statistics are
//!   reproducible bit-for-bit.
//! * **Std-only.** The executor is ~300 lines over `std::task`; no runtime
//!   dependency.
//! * **Deadlock-detecting.** If no task is runnable and no timer is pending
//!   while the root task is incomplete, [`Simulation::run`] panics with the
//!   set of live tasks instead of hanging.
//!
//! # Example
//!
//! ```
//! use tapejoin_sim::{Simulation, Duration, spawn, sleep, now};
//!
//! let mut sim = Simulation::new();
//! let total = sim.run(async {
//!     let a = spawn(async {
//!         sleep(Duration::from_secs(2)).await;
//!         2u64
//!     });
//!     let b = spawn(async {
//!         sleep(Duration::from_secs(3)).await;
//!         3u64
//!     });
//!     // Both sleeps overlap in virtual time.
//!     let sum = a.join().await + b.join().await;
//!     assert_eq!(now().as_secs_f64(), 3.0);
//!     sum
//! });
//! assert_eq!(total, 5);
//! ```

#![warn(missing_docs)]

mod activity;
mod executor;
mod server;
mod time;
mod trace;

pub mod sync;

pub use activity::{Activity, ActivityLog};
pub use executor::{now, spawn, yield_now, JoinHandle, Simulation};
pub use server::{Server, ServerStats, ServiceObserver};
pub use time::{transfer_time, Duration, SimTime};
pub use trace::{Trace, TraceError, TracePoint};

/// Sleep until the virtual clock reaches `deadline`.
pub async fn sleep_until(deadline: SimTime) {
    executor::sleep_until(deadline).await;
}

/// Sleep for `dur` of virtual time.
pub async fn sleep(dur: Duration) {
    executor::sleep_until(now() + dur).await;
}

/// Run two futures concurrently and return both results, completing when
/// the later of the two completes. This is the "overlap tape and disk I/O"
/// primitive: `join2(tape_read, disk_scan)` costs `max` of the two times.
pub async fn join2<A, B>(a: A, b: B) -> (A::Output, B::Output)
where
    A: std::future::Future + 'static,
    B: std::future::Future + 'static,
    A::Output: 'static,
    B::Output: 'static,
{
    let ha = spawn(a);
    let hb = spawn(b);
    (ha.join().await, hb.join().await)
}

/// Run three futures concurrently, returning all three results.
pub async fn join3<A, B, C>(a: A, b: B, c: C) -> (A::Output, B::Output, C::Output)
where
    A: std::future::Future + 'static,
    B: std::future::Future + 'static,
    C: std::future::Future + 'static,
    A::Output: 'static,
    B::Output: 'static,
    C::Output: 'static,
{
    let ha = spawn(a);
    let hb = spawn(b);
    let hc = spawn(c);
    (ha.join().await, hb.join().await, hc.join().await)
}

/// Outcome of [`race2`]: which contestant finished first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Either<A, B> {
    /// The first future won.
    Left(A),
    /// The second future won.
    Right(B),
}

/// Race two futures; resolves with the winner's output as soon as either
/// completes (ties go to the first). The loser keeps running detached in
/// the background — in a simulation there is no cancellation of device
/// work already queued.
pub async fn race2<A, B>(a: A, b: B) -> Either<A::Output, B::Output>
where
    A: std::future::Future + 'static,
    B: std::future::Future + 'static,
    A::Output: 'static,
    B::Output: 'static,
{
    use std::cell::RefCell;
    use std::rc::Rc;

    type Slot<A, B> = Rc<RefCell<Option<Either<A, B>>>>;
    let result: Slot<A::Output, B::Output> = Rc::new(RefCell::new(None));
    let notify = sync::Notify::new();
    {
        let result = Rc::clone(&result);
        let notify = notify.clone();
        spawn(async move {
            let out = a.await;
            let mut slot = result.borrow_mut();
            if slot.is_none() {
                *slot = Some(Either::Left(out));
                notify.notify_one();
            }
        });
    }
    {
        let result = Rc::clone(&result);
        let notify = notify.clone();
        spawn(async move {
            let out = b.await;
            let mut slot = result.borrow_mut();
            if slot.is_none() {
                *slot = Some(Either::Right(out));
                notify.notify_one();
            }
        });
    }
    notify.notified().await;
    let winner = result.borrow_mut().take();
    // lint:allow(L3, the race winner is recorded before the notify that woke us)
    winner.expect("race winner recorded before notify")
}

/// Run `fut` with a virtual-time deadline: `Some(output)` if it finishes
/// within `limit`, `None` otherwise (the timed-out future keeps running
/// detached; see [`race2`]).
pub async fn timeout<F>(limit: Duration, fut: F) -> Option<F::Output>
where
    F: std::future::Future + 'static,
    F::Output: 'static,
{
    match race2(fut, sleep(limit)).await {
        Either::Left(v) => Some(v),
        Either::Right(()) => None,
    }
}

/// Run every future in `futs` concurrently and collect their outputs in
/// input order.
pub async fn join_all<F>(futs: Vec<F>) -> Vec<F::Output>
where
    F: std::future::Future + 'static,
    F::Output: 'static,
{
    let handles: Vec<_> = futs.into_iter().map(spawn).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.join().await);
    }
    out
}
