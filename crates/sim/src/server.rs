//! FIFO service centers — the building block for modelled devices.
//!
//! A [`Server`] serves one request at a time in arrival order; concurrent
//! requesters queue. A tape drive or a disk array is a `Server` whose
//! per-request service time is computed from the device model at the
//! moment service *starts* (so state such as head position reflects all
//! previously served requests).
//!
//! lint:allow-file(L9, per-device stat and observer handles shared between tasks on one executor only)

use std::cell::RefCell;
use std::rc::Rc;

use crate::activity::ActivityLog;
use crate::sync::Semaphore;
use crate::time::{Duration, SimTime};
use crate::{now, sleep};

/// Observer notified of every completed service interval on a [`Server`].
///
/// This is the hook an external tracing layer (e.g. `tapejoin-obs`)
/// implements to turn raw device activity into spans without the simulator
/// depending on it. Observers run *after* the service interval, at its end
/// time, and must not advance virtual time.
pub trait ServiceObserver {
    /// One request finished service on `server` over `[start, end)`.
    fn service(&self, server: &str, start: SimTime, end: SimTime);
}

/// Cumulative statistics for one service center.
#[derive(Clone, Debug, Default)]
pub struct ServerStats {
    /// Requests completed.
    pub requests: u64,
    /// Total time the server spent serving (busy time).
    pub busy: Duration,
    /// Total time requests spent queued before service.
    pub queued: Duration,
    /// Deepest queue observed at any request arrival, counting the
    /// arriving request itself and the one in service (so an uncontended
    /// server reports 1). Makes drive contention under concurrent
    /// workloads observable.
    pub max_queue_depth: u64,
    /// Longest wait any single request spent queued before service.
    pub max_wait: Duration,
    /// Requests that had to wait at all before service started.
    pub waited: u64,
}

impl ServerStats {
    /// Fraction of virtual time `[0, at]` the server was busy.
    pub fn utilization(&self, at: SimTime) -> f64 {
        if at == SimTime::ZERO {
            0.0
        } else {
            self.busy.as_secs_f64() / at.as_secs_f64()
        }
    }

    /// Mean time a request spent queued before service.
    pub fn mean_wait(&self) -> Duration {
        match self.queued.as_nanos().checked_div(self.requests) {
            Some(ns) => Duration::from_nanos(ns),
            None => Duration::ZERO,
        }
    }
}

/// A FIFO, single-channel service center.
///
/// # Examples
///
/// ```
/// use tapejoin_sim::{now, Duration, Server, SimTime, Simulation};
///
/// let mut sim = Simulation::new();
/// sim.run(async {
///     let device = Server::new("disk");
///     device.serve(Duration::from_secs(2)).await;
///     device.serve(Duration::from_secs(3)).await;
///     assert_eq!(now(), SimTime::ZERO + Duration::from_secs(5)); // FIFO, serialized
///     assert_eq!(device.stats().requests, 2);
/// });
/// ```
#[derive(Clone)]
pub struct Server {
    name: Rc<str>,
    sem: Semaphore,
    stats: Rc<RefCell<ServerStats>>,
    activity: Rc<RefCell<Option<ActivityLog>>>,
    observer: Rc<RefCell<Option<Rc<dyn ServiceObserver>>>>,
}

impl Server {
    /// Create a named server.
    pub fn new(name: impl Into<String>) -> Self {
        Server {
            name: Rc::from(name.into().into_boxed_str()),
            sem: Semaphore::new(1),
            stats: Rc::new(RefCell::new(ServerStats::default())),
            activity: Rc::new(RefCell::new(None)),
            observer: Rc::new(RefCell::new(None)),
        }
    }

    /// Attach an activity log; every subsequent service interval is
    /// recorded into it.
    pub fn attach_activity_log(&self, log: ActivityLog) {
        *self.activity.borrow_mut() = Some(log);
    }

    /// Attach a service observer; every subsequent service interval is
    /// reported to it (replacing any previous observer).
    pub fn attach_observer(&self, obs: Rc<dyn ServiceObserver>) {
        *self.observer.borrow_mut() = Some(obs);
    }

    /// The server's diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Snapshot of the cumulative statistics.
    pub fn stats(&self) -> ServerStats {
        self.stats.borrow().clone()
    }

    /// Queue for the server, then hold it for a service time computed by
    /// `f` *at service start*. `f` returns the service duration plus an
    /// arbitrary result handed back to the caller.
    pub async fn serve_with<R>(&self, f: impl FnOnce() -> (Duration, R)) -> R {
        let arrived = now();
        // Queue depth at arrival: this request, everyone parked ahead of
        // it, and the request in service (permit held) if any.
        let depth = self.sem.waiters() as u64 + u64::from(self.sem.available() == 0) + 1;
        {
            let mut st = self.stats.borrow_mut();
            st.max_queue_depth = st.max_queue_depth.max(depth);
        }
        let _permit = self.sem.acquire(1).await;
        let started = now();
        let (service, out) = f();
        sleep(service).await;
        {
            let mut st = self.stats.borrow_mut();
            let wait = started.duration_since(arrived);
            st.requests += 1;
            st.busy += service;
            st.queued += wait;
            if !wait.is_zero() {
                st.waited += 1;
                st.max_wait = st.max_wait.max(wait);
            }
        }
        if let Some(log) = self.activity.borrow().as_ref() {
            log.record(started, now(), self.name.to_string());
        }
        if let Some(obs) = self.observer.borrow().as_ref() {
            obs.service(&self.name, started, now());
        }
        out
    }

    /// Queue for the server and hold it for a fixed `service` time.
    pub async fn serve(&self, service: Duration) {
        self.serve_with(|| (service, ())).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{join_all, spawn, Simulation};

    #[test]
    fn requests_serialize_fifo() {
        let mut sim = Simulation::new();
        sim.run(async {
            let srv = Server::new("dev");
            let mut handles = Vec::new();
            for _ in 0..3 {
                let srv = srv.clone();
                handles.push(spawn(async move {
                    srv.serve(Duration::from_secs(2)).await;
                    now()
                }));
            }
            let done: Vec<_> = join_all(handles.into_iter().map(|h| h.join()).collect()).await;
            let secs: Vec<f64> = done.iter().map(|t| t.as_secs_f64()).collect();
            assert_eq!(secs, vec![2.0, 4.0, 6.0]);
            let st = srv.stats();
            assert_eq!(st.requests, 3);
            assert_eq!(st.busy, Duration::from_secs(6));
            assert_eq!(st.queued, Duration::from_secs(2 + 4));
            assert!((st.utilization(now()) - 1.0).abs() < 1e-9);
        });
    }

    #[test]
    fn wait_and_depth_tracking() {
        let mut sim = Simulation::new();
        sim.run(async {
            let srv = Server::new("dev");
            let mut handles = Vec::new();
            // All three arrive at t=0: depths 1, 2, 3; waits 0s, 2s, 4s.
            for _ in 0..3 {
                let srv = srv.clone();
                handles.push(spawn(async move {
                    srv.serve(Duration::from_secs(2)).await;
                }));
            }
            join_all(handles.into_iter().map(|h| h.join()).collect()).await;
            let st = srv.stats();
            assert_eq!(st.max_queue_depth, 3);
            assert_eq!(st.max_wait, Duration::from_secs(4));
            assert_eq!(st.waited, 2);
            assert_eq!(st.mean_wait(), Duration::from_secs(2)); // (0+2+4)/3
        });
    }

    #[test]
    fn uncontended_server_reports_depth_one_no_waits() {
        let mut sim = Simulation::new();
        sim.run(async {
            let srv = Server::new("dev");
            srv.serve(Duration::from_secs(1)).await;
            srv.serve(Duration::from_secs(1)).await;
            let st = srv.stats();
            assert_eq!(st.max_queue_depth, 1);
            assert_eq!(st.max_wait, Duration::ZERO);
            assert_eq!(st.waited, 0);
            assert_eq!(st.mean_wait(), Duration::ZERO);
        });
    }

    #[test]
    fn two_servers_overlap() {
        let mut sim = Simulation::new();
        let t = sim.run(async {
            let a = Server::new("a");
            let b = Server::new("b");
            let ha = spawn(async move { a.serve(Duration::from_secs(5)).await });
            let hb = spawn(async move { b.serve(Duration::from_secs(4)).await });
            ha.join().await;
            hb.join().await;
            now()
        });
        assert_eq!(t, crate::SimTime::ZERO + crate::Duration::from_secs(5));
    }

    #[test]
    fn observer_sees_service_intervals() {
        struct Collect(RefCell<Vec<(String, SimTime, SimTime)>>);
        impl ServiceObserver for Collect {
            fn service(&self, server: &str, start: SimTime, end: SimTime) {
                self.0.borrow_mut().push((server.to_string(), start, end));
            }
        }
        let obs = Rc::new(Collect(RefCell::new(Vec::new())));
        let mut sim = Simulation::new();
        let obs2 = Rc::clone(&obs);
        sim.run(async move {
            let srv = Server::new("dev");
            srv.attach_observer(obs2);
            srv.serve(Duration::from_secs(2)).await;
            srv.serve(Duration::from_secs(3)).await;
        });
        let seen = obs.0.borrow();
        assert_eq!(
            *seen,
            vec![
                (
                    "dev".into(),
                    SimTime::ZERO,
                    SimTime::from_nanos(2_000_000_000)
                ),
                (
                    "dev".into(),
                    SimTime::from_nanos(2_000_000_000),
                    SimTime::from_nanos(5_000_000_000)
                ),
            ]
        );
    }

    #[test]
    fn service_time_computed_at_start() {
        let mut sim = Simulation::new();
        sim.run(async {
            let srv = Server::new("dev");
            let srv2 = srv.clone();
            // Second request's service time depends on when it starts.
            let h = spawn(async move {
                srv2.serve_with(|| {
                    assert_eq!(now(), crate::SimTime::ZERO);
                    (Duration::from_secs(3), ())
                })
                .await;
            });
            crate::yield_now().await;
            srv.serve_with(|| {
                assert_eq!(now(), crate::SimTime::ZERO + crate::Duration::from_secs(3));
                (Duration::from_secs(1), ())
            })
            .await;
            h.join().await;
        });
    }
}
