//! The virtual-time executor.
//!
//! A single host thread drives a set of tasks (boxed futures). Tasks become
//! runnable either because a waker fired (synchronization primitives,
//! completed timers) or because they were just spawned. When no task is
//! runnable, the executor pops the earliest pending timer, advances the
//! virtual clock to its deadline, and wakes it — the classic discrete-event
//! loop.
//!
//! Determinism: the ready queue is strictly FIFO, and timers are totally
//! ordered by `(deadline, registration sequence)`. Given the same program,
//! every run observes the same interleaving.
//!
//! lint:allow-file(L9, the cooperative executor is the single-thread boundary itself; ROADMAP-2 runs one executor per worker, so nothing here crosses threads)

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

use crate::time::SimTime;

type TaskId = u64;
type BoxedTask = Pin<Box<dyn Future<Output = ()>>>;

/// FIFO queue of runnable task ids. This is the only piece of state a
/// [`Waker`] touches, and it is `Send + Sync` so the wakers are sound even
/// though the rest of the executor is single-threaded.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<TaskId>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        self.queue
            .lock()
            // lint:allow(L3, std Mutex in the single-threaded executor cannot be poisoned)
            .expect("ready queue poisoned")
            .push_back(id);
    }

    fn pop(&self) -> Option<TaskId> {
        // lint:allow(L3, std Mutex in the single-threaded executor cannot be poisoned)
        self.queue.lock().expect("ready queue poisoned").pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }

    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A timer registration: wake `waker` once the clock reaches `at`.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    waker: Waker,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Per-run executor state, reachable from any point inside the simulation
/// through a thread-local handle.
struct SimCtx {
    now: Cell<SimTime>,
    seq: Cell<u64>,
    next_task: Cell<TaskId>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    /// Tasks spawned while another task is being polled; folded into the
    /// task table between polls.
    spawned: RefCell<Vec<(TaskId, BoxedTask)>>,
    ready: Arc<ReadyQueue>,
}

impl SimCtx {
    fn next_seq(&self) -> u64 {
        let s = self.seq.get();
        self.seq.set(s + 1);
        s
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Rc<SimCtx>>> = const { RefCell::new(None) };
}

fn with_ctx<R>(f: impl FnOnce(&SimCtx) -> R) -> R {
    CURRENT.with(|cur| {
        let borrowed = cur.borrow();
        let ctx = borrowed
            .as_ref()
            // lint:allow(L3, calling sim primitives outside Simulation::run is API misuse; fail loud)
            .expect("not inside a simulation: call this from within Simulation::run");
        f(ctx)
    })
}

/// The current virtual time. Panics outside [`Simulation::run`].
pub fn now() -> SimTime {
    with_ctx(|ctx| ctx.now.get())
}

/// The shared result slot of a spawned task.
struct JoinState<T> {
    result: Option<T>,
    waiter: Option<Waker>,
    finished: bool,
}

/// Handle to a task started with [`spawn`]. Await [`JoinHandle::join`] to
/// obtain its output.
///
/// Dropping the handle detaches the task: it keeps running, its output is
/// discarded.
pub struct JoinHandle<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T: 'static> JoinHandle<T> {
    /// Wait for the task to complete and return its output.
    pub async fn join(self) -> T {
        JoinFuture { state: self.state }.await
    }

    /// `true` once the task has run to completion.
    pub fn is_finished(&self) -> bool {
        self.state.borrow().finished
    }
}

struct JoinFuture<T> {
    state: Rc<RefCell<JoinState<T>>>,
}

impl<T> Future for JoinFuture<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let mut st = self.state.borrow_mut();
        if let Some(v) = st.result.take() {
            return Poll::Ready(v);
        }
        assert!(
            !st.finished,
            "JoinHandle polled after the task's output was already taken"
        );
        st.waiter = Some(cx.waker().clone());
        Poll::Pending
    }
}

/// Spawn a new task onto the current simulation. The task starts runnable
/// and is polled in FIFO order with everything else.
pub fn spawn<F>(fut: F) -> JoinHandle<F::Output>
where
    F: Future + 'static,
    F::Output: 'static,
{
    let state = Rc::new(RefCell::new(JoinState {
        result: None,
        waiter: None,
        finished: false,
    }));
    let state2 = Rc::clone(&state);
    let wrapped = async move {
        let out = fut.await;
        let mut st = state2.borrow_mut();
        st.result = Some(out);
        st.finished = true;
        if let Some(w) = st.waiter.take() {
            w.wake();
        }
    };
    with_ctx(|ctx| {
        let id = ctx.next_task.get();
        ctx.next_task.set(id + 1);
        ctx.spawned.borrow_mut().push((id, Box::pin(wrapped)));
        ctx.ready.push(id);
    });
    JoinHandle { state }
}

/// Future returned by [`crate::sleep_until`] / [`crate::sleep`].
struct Sleep {
    deadline: SimTime,
}

impl Future for Sleep {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let deadline = self.deadline;
        with_ctx(|ctx| {
            if ctx.now.get() >= deadline {
                return Poll::Ready(());
            }
            // Register on every pending poll so the latest waker is the one
            // that fires; a stale registration causes at most a harmless
            // spurious wake.
            ctx.timers.borrow_mut().push(Reverse(TimerEntry {
                at: deadline,
                seq: ctx.next_seq(),
                waker: cx.waker().clone(),
            }));
            Poll::Pending
        })
    }
}

pub(crate) async fn sleep_until(deadline: SimTime) {
    Sleep { deadline }.await
}

/// Yield to the scheduler once: the task goes to the back of the ready
/// queue and resumes at the same virtual time.
pub async fn yield_now() {
    struct Yield(bool);
    impl Future for Yield {
        type Output = ();
        fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
            if self.0 {
                Poll::Ready(())
            } else {
                self.0 = true;
                cx.waker().wake_by_ref();
                Poll::Pending
            }
        }
    }
    Yield(false).await
}

/// Telemetry from one [`Simulation::run`] call.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RunStats {
    /// Future polls performed.
    pub polls: u64,
    /// Timers fired (clock advances may fire several at once).
    pub timers_fired: u64,
    /// Tasks spawned, including the root.
    pub tasks_spawned: u64,
    /// Virtual time when the root completed.
    pub end_time: SimTime,
}

/// A discrete-event simulation run.
///
/// Each call to [`Simulation::run`] executes one independent simulation:
/// the virtual clock starts at zero and the given root future is driven,
/// together with everything it spawns, until the root completes. Tasks
/// still pending when the root finishes are dropped.
#[derive(Default)]
pub struct Simulation {
    last_run: Option<RunStats>,
}

impl Simulation {
    /// Create a simulation harness.
    pub fn new() -> Self {
        Simulation { last_run: None }
    }

    /// Telemetry from the most recent [`Simulation::run`] call.
    pub fn last_run(&self) -> Option<RunStats> {
        self.last_run
    }

    /// Drive `root` (and everything it spawns) to completion in virtual
    /// time and return its output, together with leaving no global state
    /// behind.
    ///
    /// # Panics
    ///
    /// * if called from inside another simulation (no nesting);
    /// * on deadlock: no runnable task, no pending timer, root incomplete.
    pub fn run<F>(&mut self, root: F) -> F::Output
    where
        F: Future + 'static,
        F::Output: 'static,
    {
        let ctx = Rc::new(SimCtx {
            now: Cell::new(SimTime::ZERO),
            seq: Cell::new(0),
            next_task: Cell::new(0),
            timers: RefCell::new(BinaryHeap::new()),
            spawned: RefCell::new(Vec::new()),
            ready: Arc::new(ReadyQueue::default()),
        });

        CURRENT.with(|cur| {
            let mut slot = cur.borrow_mut();
            assert!(
                slot.is_none(),
                "Simulation::run may not be nested inside another simulation"
            );
            *slot = Some(Rc::clone(&ctx));
        });
        // Restore the thread-local even if the simulation panics, so tests
        // that assert panics don't poison subsequent simulations.
        struct Reset;
        impl Drop for Reset {
            fn drop(&mut self) {
                CURRENT.with(|cur| cur.borrow_mut().take());
            }
        }
        let _reset = Reset;

        let result: Rc<RefCell<Option<F::Output>>> = Rc::new(RefCell::new(None));
        let result2 = Rc::clone(&result);
        let root_id = ctx.next_task.get();
        ctx.next_task.set(root_id + 1);
        let root_task: BoxedTask = Box::pin(async move {
            let out = root.await;
            *result2.borrow_mut() = Some(out);
        });

        let mut tasks: HashMap<TaskId, BoxedTask> = HashMap::new();
        tasks.insert(root_id, root_task);
        ctx.ready.push(root_id);
        let mut stats = RunStats::default();

        loop {
            // Phase 1: run every currently runnable task to quiescence.
            while let Some(id) = ctx.ready.pop() {
                // A task may appear in the queue more than once (multiple
                // wakes) or after completion; both are benign.
                let Some(mut task) = tasks.remove(&id) else {
                    continue;
                };
                let waker = Waker::from(Arc::new(TaskWaker {
                    id,
                    ready: Arc::clone(&ctx.ready),
                }));
                let mut cx = Context::from_waker(&waker);
                stats.polls += 1;
                match task.as_mut().poll(&mut cx) {
                    Poll::Ready(()) => {}
                    Poll::Pending => {
                        tasks.insert(id, task);
                    }
                }
                // Adopt tasks spawned during this poll.
                for (new_id, new_task) in ctx.spawned.borrow_mut().drain(..) {
                    tasks.insert(new_id, new_task);
                }
                if result.borrow().is_some() {
                    stats.tasks_spawned = ctx.next_task.get();
                    stats.end_time = ctx.now.get();
                    self.last_run = Some(stats);
                    // lint:allow(L3, the root future just completed, so its result slot is filled)
                    return result.borrow_mut().take().expect("root result vanished");
                }
            }

            // Phase 2: nothing runnable — advance the clock to the next
            // timer deadline and fire every timer scheduled for it.
            let next_at = match ctx.timers.borrow().peek() {
                Some(Reverse(e)) => e.at,
                // lint:allow(L3, deadlock: no runnable task and no timer — unrecoverable, report executor state loudly)
                None => panic!(
                    "simulation deadlock at {:?}: {} task(s) blocked with no pending timer",
                    ctx.now.get(),
                    tasks.len()
                ),
            };
            assert!(next_at >= ctx.now.get(), "timer scheduled in the past");
            ctx.now.set(next_at);
            loop {
                let fire = {
                    let mut timers = ctx.timers.borrow_mut();
                    match timers.peek() {
                        Some(Reverse(e)) if e.at <= next_at => {
                            // lint:allow(L3, the timer was peeked under the same borrow)
                            Some(timers.pop().expect("peeked timer vanished").0)
                        }
                        _ => None,
                    }
                };
                match fire {
                    Some(entry) => {
                        stats.timers_fired += 1;
                        entry.waker.wake();
                    }
                    None => break,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::Duration;
    use crate::{join2, sleep, sleep_until};

    #[test]
    fn clock_starts_at_zero_and_advances() {
        let mut sim = Simulation::new();
        sim.run(async {
            assert_eq!(now(), SimTime::ZERO);
            sleep(Duration::from_secs(5)).await;
            assert_eq!(now(), SimTime::from_nanos(5_000_000_000));
        });
    }

    #[test]
    fn parallel_sleeps_overlap() {
        let mut sim = Simulation::new();
        let t = sim.run(async {
            let ((), ()) =
                join2(sleep(Duration::from_secs(7)), sleep(Duration::from_secs(4))).await;
            now()
        });
        assert_eq!(t, crate::SimTime::ZERO + crate::Duration::from_secs(7));
    }

    #[test]
    fn sequential_sleeps_accumulate() {
        let mut sim = Simulation::new();
        let t = sim.run(async {
            sleep(Duration::from_secs(3)).await;
            sleep(Duration::from_secs(4)).await;
            now()
        });
        assert_eq!(t, crate::SimTime::ZERO + crate::Duration::from_secs(7));
    }

    #[test]
    fn spawn_returns_value() {
        let mut sim = Simulation::new();
        let v = sim.run(async {
            let h = spawn(async {
                sleep(Duration::from_millis(10)).await;
                42
            });
            h.join().await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn join_after_completion_is_immediate() {
        let mut sim = Simulation::new();
        sim.run(async {
            let h = spawn(async { 1u8 });
            sleep(Duration::from_secs(1)).await;
            assert!(h.is_finished());
            assert_eq!(h.join().await, 1);
            assert_eq!(now(), crate::SimTime::ZERO + crate::Duration::from_secs(1));
        });
    }

    #[test]
    fn detached_tasks_keep_running() {
        use std::cell::Cell;
        use std::rc::Rc;
        let mut sim = Simulation::new();
        let hits = Rc::new(Cell::new(0));
        let hits2 = Rc::clone(&hits);
        let n = sim.run(async move {
            let hits3 = Rc::clone(&hits2);
            drop(spawn(async move {
                sleep(Duration::from_secs(1)).await;
                hits3.set(hits3.get() + 1);
            }));
            sleep(Duration::from_secs(2)).await;
            hits2.get()
        });
        assert_eq!(n, 1);
        assert_eq!(hits.get(), 1);
    }

    #[test]
    fn root_completion_drops_pending_tasks() {
        let mut sim = Simulation::new();
        let t = sim.run(async {
            // Never finishes before the root does.
            drop(spawn(async {
                sleep(Duration::from_secs(1_000_000)).await;
            }));
            sleep(Duration::from_secs(1)).await;
            now()
        });
        assert_eq!(t, crate::SimTime::ZERO + crate::Duration::from_secs(1));
    }

    #[test]
    fn sleep_until_past_deadline_is_noop() {
        let mut sim = Simulation::new();
        sim.run(async {
            sleep(Duration::from_secs(2)).await;
            sleep_until(SimTime::from_nanos(1)).await; // already past
            assert_eq!(now(), crate::SimTime::ZERO + crate::Duration::from_secs(2));
        });
    }

    #[test]
    fn simultaneous_timers_fire_in_registration_order() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let mut sim = Simulation::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o = Rc::clone(&order);
        sim.run(async move {
            let mut handles = Vec::new();
            for i in 0..8 {
                let o = Rc::clone(&o);
                handles.push(spawn(async move {
                    sleep(Duration::from_secs(1)).await;
                    o.borrow_mut().push(i);
                }));
            }
            for h in handles {
                h.join().await;
            }
        });
        assert_eq!(*order.borrow(), (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn yield_now_does_not_advance_time() {
        let mut sim = Simulation::new();
        sim.run(async {
            yield_now().await;
            yield_now().await;
            assert_eq!(now(), SimTime::ZERO);
        });
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let mut sim = Simulation::new();
        sim.run(async {
            // A future that is never woken.
            std::future::pending::<()>().await;
        });
    }

    #[test]
    fn run_stats_are_reported() {
        let mut sim = Simulation::new();
        assert!(sim.last_run().is_none());
        sim.run(async {
            for _ in 0..3 {
                spawn(async { sleep(Duration::from_secs(1)).await })
                    .join()
                    .await;
            }
        });
        let stats = sim.last_run().unwrap();
        assert_eq!(stats.tasks_spawned, 4); // root + 3
        assert_eq!(stats.timers_fired, 3);
        assert!(stats.polls >= 7);
        assert_eq!(
            stats.end_time,
            crate::SimTime::ZERO + crate::Duration::from_secs(3)
        );
    }

    #[test]
    #[should_panic(expected = "may not be nested")]
    fn nested_run_panics() {
        let mut outer = Simulation::new();
        outer.run(async {
            let mut inner = Simulation::new();
            inner.run(async {});
        });
    }

    #[test]
    fn run_twice_is_independent() {
        let mut sim = Simulation::new();
        for _ in 0..2 {
            let t = sim.run(async {
                sleep(Duration::from_secs(1)).await;
                now()
            });
            assert_eq!(t, crate::SimTime::ZERO + crate::Duration::from_secs(1));
        }
    }

    #[test]
    fn deep_spawn_chain() {
        let mut sim = Simulation::new();
        let v = sim.run(async {
            fn chain(n: u32) -> std::pin::Pin<Box<dyn std::future::Future<Output = u64>>> {
                Box::pin(async move {
                    if n == 0 {
                        return 0;
                    }
                    sleep(Duration::from_millis(1)).await;
                    spawn(chain(n - 1)).join().await + 1
                })
            }
            chain(100).await
        });
        assert_eq!(v, 100);
    }
}
