//! Virtual time.
//!
//! Simulation time is an unsigned count of nanoseconds since the start of
//! the run. Nanosecond resolution keeps device-rate arithmetic (bytes /
//! bytes-per-second) exact enough that block-level transfer times do not
//! accumulate visible rounding error even over multi-hour simulated runs.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the virtual clock (nanoseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch, `t = 0`.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant (used as an "infinite" deadline).
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Time elapsed since `earlier`. Panics if `earlier` is later than
    /// `self`; virtual time never runs backwards.
    pub fn duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(
            self.0
                .checked_sub(earlier.0)
                // lint:allow(L3, duration_since contract: the argument is an earlier instant)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Saturating difference, zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.as_nanos())
                // lint:allow(L3, virtual-clock overflow (~584 simulated years) is unrepresentable)
                .expect("virtual clock overflow"),
        )
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.duration_since(rhs)
    }
}

impl Sub<Duration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: Duration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.as_nanos())
                // lint:allow(L3, underflow would rewind the clock past zero — a scheduler bug)
                .expect("virtual clock underflow"),
        )
    }
}

/// A span of virtual time (nanoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Duration {
    /// The empty span.
    pub const ZERO: Duration = Duration(0);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        Duration(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        Duration(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        Duration(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        Duration(s * 1_000_000_000)
    }

    /// Construct from fractional seconds. Panics on negative or
    /// non-finite input.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "Duration::from_secs_f64: invalid seconds {s}"
        );
        Duration((s * 1e9).round() as u64)
    }

    /// Raw nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when this is the empty span.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked multiplication by an integer count (e.g. per-block service
    /// time times a block count).
    pub fn checked_mul(self, n: u64) -> Option<Duration> {
        self.0.checked_mul(n).map(Duration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Duration) -> Duration {
        Duration(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        // lint:allow(L3, Duration overflow beyond u64 nanoseconds is unrepresentable)
        Duration(self.0.checked_add(rhs.0).expect("Duration overflow"))
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        Duration(
            self.0
                .checked_sub(rhs.0)
                // lint:allow(L3, Duration subtraction contract: rhs <= self)
                .expect("Duration subtraction underflow"),
        )
    }
}

impl std::iter::Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

/// Time to move `bytes` at `bytes_per_sec`, rounded up to whole
/// nanoseconds so a transfer never completes early.
pub fn transfer_time(bytes: u64, bytes_per_sec: f64) -> Duration {
    assert!(
        bytes_per_sec > 0.0 && bytes_per_sec.is_finite(),
        "transfer_time: invalid rate {bytes_per_sec}"
    );
    Duration::from_nanos((bytes as f64 * 1e9 / bytes_per_sec).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t = SimTime::from_nanos(5_000);
        let d = Duration::from_nanos(2_500);
        assert_eq!((t + d).as_nanos(), 7_500);
        assert_eq!((t + d) - t, d);
        assert_eq!(t.duration_since(SimTime::ZERO).as_nanos(), 5_000);
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(Duration::from_secs(2), Duration::from_millis(2_000));
        assert_eq!(Duration::from_millis(3), Duration::from_micros(3_000));
        assert_eq!(Duration::from_secs_f64(0.5), Duration::from_millis(500));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_subtraction_underflow_panics() {
        let _ = Duration::from_nanos(1) - Duration::from_nanos(2);
    }

    #[test]
    #[should_panic(expected = "in the future")]
    fn duration_since_future_panics() {
        SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn transfer_time_is_exact_for_round_rates() {
        // 1 MiB at 1 MiB/s is exactly one second.
        let d = transfer_time(1 << 20, (1 << 20) as f64);
        assert_eq!(d, Duration::from_secs(1));
    }

    #[test]
    fn transfer_time_rounds_up() {
        // 1 byte at 3 bytes/s: 333333333.33ns rounds to ...34.
        let d = transfer_time(1, 3.0);
        assert_eq!(d.as_nanos(), 333_333_334);
    }

    #[test]
    fn saturating_ops() {
        assert_eq!(
            Duration::from_nanos(1).saturating_sub(Duration::from_nanos(5)),
            Duration::ZERO
        );
        assert_eq!(
            SimTime::from_nanos(1).saturating_duration_since(SimTime::from_nanos(9)),
            Duration::ZERO
        );
    }
}
