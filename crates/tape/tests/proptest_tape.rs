//! Property tests for the tape substrate: drive state invariants under
//! arbitrary operation sequences, and multi-volume address mapping.

use proptest::prelude::*;
use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_sim::{Duration, Simulation};
use tapejoin_tape::{TapeDrive, TapeDriveModel, TapeMedia};

const BLOCK: u64 = 1 << 16;

#[derive(Clone, Debug)]
enum Op {
    Read { pos_frac: f64, len: u64 },
    ReadReverse { end_frac: f64, len: u64 },
    Rewind,
    Append { len: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0.0f64..1.0, 1u64..20).prop_map(|(pos_frac, len)| Op::Read { pos_frac, len }),
        (0.0f64..1.0, 1u64..20).prop_map(|(end_frac, len)| Op::ReadReverse { end_frac, len }),
        Just(Op::Rewind),
        (1u64..8).prop_map(|len| Op::Append { len }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Whatever the operation sequence, the drive's position stays within
    /// the media, statistics count every block exactly once, and data
    /// read back matches what was mastered.
    #[test]
    fn drive_state_invariants(ops in proptest::collection::vec(arb_op(), 1..25)) {
        let mut sim = Simulation::new();
        let ops2 = ops.clone();
        sim.run(async move {
            let data_blocks = 64u64;
            let w = WorkloadBuilder::new(1)
                .r(RelationSpec::new("R", data_blocks).compressibility(0.0))
                .build();
            let tape = TapeMedia::blank("t", 512);
            tape.load_relation(&w.r);
            let model = TapeDriveModel::ideal(1e6);
            let drive = TapeDrive::new("d", model, BLOCK);
            drive.mount(tape.clone());

            let mut expected_read = 0u64;
            let mut expected_written = 0u64;
            for op in ops2 {
                match op {
                    Op::Read { pos_frac, len } => {
                        let eod = tape.end_of_data();
                        let pos = ((eod as f64 - 1.0) * pos_frac) as u64;
                        let n = len.min(eod - pos);
                        let blocks = drive.read(pos, n).await;
                        assert_eq!(blocks.len() as usize, n as usize);
                        expected_read += n;
                        assert_eq!(drive.position(), pos + n);
                    }
                    Op::ReadReverse { end_frac, len } => {
                        let eod = tape.end_of_data();
                        let end = ((eod as f64) * end_frac).max(1.0) as u64;
                        let n = len.min(end);
                        drive.read_reverse(end, n).await;
                        expected_read += n;
                        assert_eq!(drive.position(), end - n);
                    }
                    Op::Rewind => {
                        drive.rewind().await;
                        assert_eq!(drive.position(), 0);
                    }
                    Op::Append { len } => {
                        if tape.free_blocks() < len {
                            continue;
                        }
                        let blocks: Vec<_> = drive.read(0, len).await;
                        expected_read += len;
                        let ext = drive.append(blocks).await;
                        expected_written += len;
                        assert_eq!(drive.position(), ext.end());
                        assert_eq!(ext.end(), tape.end_of_data());
                    }
                }
                assert!(drive.position() <= tape.end_of_data());
            }
            let st = drive.stats();
            assert_eq!(st.blocks_read, expected_read);
            assert_eq!(st.blocks_written, expected_written);
        });
    }

    /// Reading any sub-range through a multi-volume view yields exactly
    /// the tuples of that range, regardless of how the volumes split.
    #[test]
    fn multivolume_range_reads_match_flat_data(
        splits in proptest::collection::vec(5u64..40, 1..4),
        read in (0u64..60, 1u64..40),
    ) {
        use tapejoin_sim::Duration as D;
        use tapejoin_tape::{MultiVolume, Segment, TapeLibrary};
        let mut sim = Simulation::new();
        let splits2 = splits.clone();
        sim.run(async move {
            let total: u64 = splits2.iter().sum();
            let w = WorkloadBuilder::new(2)
                .r(RelationSpec::new("R", total).tuples_per_block(2))
                .build();
            let flat: Vec<u64> = w.r.tuples().map(|t| t.rid).collect();
            let library = TapeLibrary::new(splits2.len(), D::from_secs(30));
            let mut segments = Vec::new();
            let mut off = 0usize;
            for (i, &len) in splits2.iter().enumerate() {
                let media = TapeMedia::blank(format!("V{i}"), len);
                let part = tapejoin_rel::Relation::new(
                    format!("p{i}"),
                    w.r.blocks()[off..off + len as usize].to_vec(),
                    0.0,
                );
                let extent = media.load_relation(&part);
                library.store(i, media).unwrap();
                segments.push(Segment { slot: i, extent });
                off += len as usize;
            }
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), BLOCK);
            let mv = MultiVolume::new(drive, library, segments);
            let (start, len) = read;
            let start = start.min(total - 1);
            let len = len.min(total - start);
            let blocks = mv.read(start, len).await.expect("range clamped to len");
            let got: Vec<u64> = blocks
                .iter()
                .flat_map(|tb| tb.data.tuples().iter().map(|t| t.rid))
                .collect();
            let lo = (start * 2) as usize;
            let hi = ((start + len) * 2) as usize;
            assert_eq!(got, flat[lo..hi]);
        });
        let _ = Duration::ZERO;
    }
}
