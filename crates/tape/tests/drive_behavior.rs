//! Behavioural tests for the tape substrate: reverse reads, streaming
//! state, back-hitching, and robot contention.

use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_sim::{now, sleep, spawn, Duration, SimTime, Simulation};
use tapejoin_tape::{TapeDrive, TapeDriveModel, TapeLibrary, TapeMedia};

const BLOCK: u64 = 1 << 16;

fn loaded_drive(blocks: u64, model: TapeDriveModel) -> (TapeDrive, Vec<u64>) {
    let w = WorkloadBuilder::new(3)
        .r(RelationSpec::new("R", blocks).compressibility(0.0))
        .build();
    let keys: Vec<u64> = w.r.tuples().map(|t| t.key).collect();
    let tape = TapeMedia::blank("t", blocks * 2);
    tape.load_relation(&w.r);
    let drive = TapeDrive::new("d", model, BLOCK);
    drive.mount(tape);
    (drive, keys)
}

#[test]
fn reverse_read_returns_blocks_in_reverse_order() {
    let mut sim = Simulation::new();
    sim.run(async {
        let (drive, keys) = loaded_drive(8, TapeDriveModel::ideal(1e6));
        let fwd = drive.read(0, 8).await;
        let rev = drive.read_reverse(8, 8).await;
        let fwd_keys: Vec<u64> = fwd
            .iter()
            .flat_map(|b| b.data.tuples().iter().map(|t| t.key))
            .collect();
        let rev_first: Vec<u64> = rev[0].data.tuples().iter().map(|t| t.key).collect();
        assert_eq!(fwd_keys, keys);
        // First reverse block is the *last* media block.
        assert_eq!(rev_first, &keys[keys.len() - 4..]);
        assert_eq!(drive.position(), 0);
    });
}

#[test]
fn reverse_read_streams_from_forward_scan_end() {
    let mut sim = Simulation::new();
    sim.run(async {
        let (drive, _) = loaded_drive(16, TapeDriveModel::ideal(1e6));
        drive.read(0, 16).await; // head at 16
        let t0 = now();
        drive.read_reverse(16, 16).await; // starts where the head sits
        let elapsed = (now() - t0).as_secs_f64();
        // Pure transfer, no reposition (ideal drive has no penalties
        // anyway, so check repositions explicitly).
        assert_eq!(drive.stats().repositions, 0);
        assert!((elapsed - 16.0 * BLOCK as f64 / 1e6).abs() < 1e-6);
    });
}

#[test]
fn alternating_direction_scans_avoid_repositions() {
    let mut sim = Simulation::new();
    sim.run(async {
        let model = TapeDriveModel::dlt4000().with_read_reverse(true);
        let (drive, _) = loaded_drive(32, model);
        // Forward, backward, forward: zero repositions, zero rewinds.
        drive.read(0, 32).await;
        drive.read_reverse(32, 32).await;
        drive.read(0, 32).await;
        let st = drive.stats();
        assert_eq!(st.repositions, 0);
        assert_eq!(st.rewinds, 0);
        assert_eq!(st.blocks_read, 96);
    });
}

#[test]
fn reverse_read_on_incapable_drive_panics() {
    let mut sim = Simulation::new();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run(async {
            let (drive, _) = loaded_drive(4, TapeDriveModel::dlt4000());
            drive.read_reverse(4, 4).await;
        });
    }));
    assert!(result.is_err());
}

#[test]
fn long_pause_breaks_streaming_within_grace_does_not() {
    let mut sim = Simulation::new();
    sim.run(async {
        let model = TapeDriveModel::ideal(1e6).with_stop_start(Duration::from_secs(3));
        // Ideal drives have a near-infinite grace; dial it down.
        let model = TapeDriveModel {
            streaming_grace: Duration::from_secs(1),
            ..model
        };
        let (drive, _) = loaded_drive(32, model);
        drive.read(0, 8).await;
        // Short pause: buffer absorbs it.
        sleep(Duration::from_millis(500)).await;
        let t0 = now();
        drive.read(8, 8).await;
        let transfer = 8.0 * BLOCK as f64 / 1e6;
        assert!(((now() - t0).as_secs_f64() - transfer).abs() < 1e-6);
        assert_eq!(drive.stats().stop_starts, 0);
        // Long pause: back-hitch.
        sleep(Duration::from_secs(5)).await;
        let t1 = now();
        drive.read(16, 8).await;
        assert!(((now() - t1).as_secs_f64() - (3.0 + transfer)).abs() < 1e-6);
        assert_eq!(drive.stats().stop_starts, 1);
    });
}

#[test]
fn robot_arm_serializes_concurrent_exchanges() {
    let mut sim = Simulation::new();
    sim.run(async {
        let lib = TapeLibrary::new(2, Duration::from_secs(30));
        lib.store(0, TapeMedia::blank("A", 4)).unwrap();
        lib.store(1, TapeMedia::blank("B", 4)).unwrap();
        let d0 = TapeDrive::new("d0", TapeDriveModel::ideal(1e6), BLOCK);
        let d1 = TapeDrive::new("d1", TapeDriveModel::ideal(1e6), BLOCK);
        let (lib0, lib1) = (lib.clone(), lib.clone());
        let h0 = spawn(async move {
            lib0.exchange(&d0, 0).await.unwrap();
            now()
        });
        let h1 = spawn(async move {
            lib1.exchange(&d1, 1).await.unwrap();
            now()
        });
        let t0 = h0.join().await;
        let t1 = h1.join().await;
        // One arm: 30 s then 60 s, not both at 30 s.
        let mut times = [t0, t1];
        times.sort();
        let expect = [
            SimTime::ZERO + Duration::from_secs(30),
            SimTime::ZERO + Duration::from_secs(60),
        ];
        assert_eq!(times, expect);
    });
}

#[test]
fn stats_track_transfer_time_separately_from_mechanics() {
    let mut sim = Simulation::new();
    sim.run(async {
        let model = TapeDriveModel::ideal(1e6).with_reposition(Duration::from_secs(10));
        let (drive, _) = loaded_drive(32, model);
        drive.read(0, 8).await;
        drive.read(20, 8).await; // reposition + transfer
        let st = drive.stats();
        let transfer = 16.0 * BLOCK as f64 / 1e6;
        assert!((st.transfer_time.as_secs_f64() - transfer).abs() < 1e-6);
        assert!((now().as_secs_f64() - (transfer + 10.0)).abs() < 1e-6);
    });
}

#[test]
fn unload_then_mount_another_cartridge() {
    let mut sim = Simulation::new();
    sim.run(async {
        let (drive, _) = loaded_drive(4, TapeDriveModel::ideal(1e6));
        let first = drive.unload().await;
        assert_eq!(first.label(), "t");
        assert!(drive.media().is_none());
        drive.mount(TapeMedia::blank("other", 4));
        assert_eq!(drive.media().unwrap().label(), "other");
    });
}

#[test]
fn corrupted_block_detected_when_verification_on() {
    let mut sim = Simulation::new();
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        sim.run(async {
            let (drive, _) = loaded_drive(8, TapeDriveModel::ideal(1e6));
            drive.media().unwrap().corrupt(3);
            drive.set_verify_reads(true);
            drive.read(0, 8).await;
        });
    }));
    let err = caught.expect_err("corruption must be detected");
    let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
    assert!(msg.contains("block 3"), "unexpected panic message: {msg}");
}

#[test]
fn corruption_passes_silently_without_verification() {
    // The data still flows — this is exactly why a production system
    // turns verification on.
    let mut sim = Simulation::new();
    sim.run(async {
        let (drive, _) = loaded_drive(8, TapeDriveModel::ideal(1e6));
        drive.media().unwrap().corrupt(3);
        let blocks = drive.read(0, 8).await;
        assert_eq!(blocks.len(), 8);
        assert!(!blocks[3].data.verify());
    });
}
