//! Tape drive performance model.

use tapejoin_sim::Duration;

/// Parameters of a tape drive's performance model.
///
/// The model abstracts the drive the way the paper's system model does
/// (§3): a sustained transfer rate `X_T`, with second-order mechanical
/// effects (repositioning, stop/start, rewind, load) available when an
/// experiment wants them. "A tape drive may in fact be an array of tape
/// drives" — use [`TapeDriveModel::rate_multiplier`] for that abstraction.
#[derive(Clone, Debug)]
pub struct TapeDriveModel {
    /// Model name for diagnostics.
    pub name: &'static str,
    /// Sustained media rate for incompressible data, bytes/second.
    pub native_rate: f64,
    /// Cap on the speed-up achievable via on-the-fly compression
    /// (DLT-4000 in 20 GB compressed mode: 2×).
    pub max_compression_gain: f64,
    /// Fixed component of relocating the head to a non-adjacent
    /// position.
    pub reposition_base: Duration,
    /// Locate speed in bytes/second-equivalent: repositioning over `d`
    /// bytes of media costs `reposition_base + d / locate_rate`. DLT
    /// drives locate serpentine tracks far faster than they read, so this
    /// is of the same order as the rewind rate.
    pub locate_rate: f64,
    /// Penalty incurred when the drive falls out of streaming mode and
    /// must back-hitch. The paper assumes enough drive buffer to hide
    /// these (§3.2), so the preset is zero; experiments can switch it on.
    pub stop_start_penalty: Duration,
    /// How long a pause the drive's internal buffer absorbs before
    /// streaming actually breaks (read-ahead / write-behind capacity in
    /// seconds of media motion). Pauses longer than this back-hitch.
    pub streaming_grace: Duration,
    /// Time to load/thread a mounted cartridge.
    pub load_time: Duration,
    /// Fixed component of a rewind.
    pub min_rewind: Duration,
    /// Effective rewind speed in bytes/second-equivalent. Serpentine
    /// drives rewind large files orders of magnitude faster than they
    /// read them.
    pub rewind_rate: f64,
    /// Whether the drive can read in the reverse direction (the SCSI-2
    /// `READ REVERSE` command; optional for manufacturers). When set,
    /// algorithms may skip rewinds between end-to-end scans.
    pub read_reverse: bool,
    /// Aggregate-drive abstraction: treat this logical drive as `k`
    /// physical drives striped together (multiplies all transfer rates).
    pub rate_multiplier: f64,
}

impl TapeDriveModel {
    /// Quantum DLT-4000 in 20 GB density mode with compression enabled —
    /// the drive used in the paper's experiments. Native sustained rate
    /// 1.5 MB/s; 2:1 compression ceiling (3.0 MB/s).
    pub fn dlt4000() -> Self {
        TapeDriveModel {
            name: "Quantum DLT-4000",
            native_rate: 1.5e6,
            max_compression_gain: 2.0,
            // Even short DLT locates pay a substantial fixed cost: the
            // drive decelerates, computes a serpentine target and re-syncs
            // (~15 s floor per Hillyer & Silberschatz's DLT measurements),
            // plus a distance-proportional component.
            reposition_base: Duration::from_secs(15),
            locate_rate: 5.0e9 / 16.0,
            stop_start_penalty: Duration::ZERO,
            // ~2 MB of internal buffer at the native rate.
            streaming_grace: Duration::from_millis(1_300),
            load_time: Duration::from_secs(40),
            min_rewind: Duration::from_secs(2),
            // "5 GB … an hour to read but only 10 seconds to rewind".
            rewind_rate: 5.0e9 / 8.0,
            read_reverse: false,
            rate_multiplier: 1.0,
        }
    }

    /// A deliberately featureless drive for unit tests: exact rate, no
    /// mechanical delays.
    pub fn ideal(rate_bytes_per_sec: f64) -> Self {
        TapeDriveModel {
            name: "ideal",
            native_rate: rate_bytes_per_sec,
            max_compression_gain: 1.0,
            reposition_base: Duration::ZERO,
            locate_rate: f64::INFINITY,
            stop_start_penalty: Duration::ZERO,
            streaming_grace: Duration::from_nanos(u64::MAX / 4),
            load_time: Duration::ZERO,
            min_rewind: Duration::ZERO,
            rewind_rate: f64::INFINITY,
            read_reverse: true,
            rate_multiplier: 1.0,
        }
    }

    /// Set the stop/start penalty (builder style).
    pub fn with_stop_start(mut self, penalty: Duration) -> Self {
        self.stop_start_penalty = penalty;
        self
    }

    /// Set the fixed reposition penalty (builder style).
    pub fn with_reposition(mut self, t: Duration) -> Self {
        self.reposition_base = t;
        self
    }

    /// Time to relocate the head over `distance_bytes` of media.
    pub fn reposition_time(&self, distance_bytes: u64) -> Duration {
        if self.locate_rate.is_infinite() {
            return self.reposition_base;
        }
        self.reposition_base + tapejoin_sim::transfer_time(distance_bytes, self.locate_rate)
    }

    /// Enable/disable the optional `READ REVERSE` capability (builder
    /// style).
    pub fn with_read_reverse(mut self, enabled: bool) -> Self {
        self.read_reverse = enabled;
        self
    }

    /// Treat this drive as an array of `k` drives (builder style).
    pub fn with_rate_multiplier(mut self, k: f64) -> Self {
        assert!(k >= 1.0, "rate multiplier must be >= 1");
        self.rate_multiplier = k;
        self
    }

    /// Effective sustained rate (bytes/second) for data of the given
    /// compressibility `c ∈ [0, 1)`: the media stream shrinks by `c`, so
    /// user data moves at `native / (1 - c)`, capped by the drive's
    /// compression ceiling.
    ///
    /// # Examples
    ///
    /// ```
    /// let dlt = tapejoin_tape::TapeDriveModel::dlt4000();
    /// assert_eq!(dlt.effective_rate(0.0), 1.5e6);  // incompressible
    /// assert_eq!(dlt.effective_rate(0.25), 2.0e6); // the paper's base case
    /// assert_eq!(dlt.effective_rate(0.5), 3.0e6);  // at the 2x ceiling
    /// ```
    pub fn effective_rate(&self, compressibility: f64) -> f64 {
        assert!(
            (0.0..1.0).contains(&compressibility),
            "compressibility must be in [0, 1): got {compressibility}"
        );
        let gain = (1.0 / (1.0 - compressibility)).min(self.max_compression_gain);
        self.native_rate * gain * self.rate_multiplier
    }

    /// Time to transfer `bytes` of data with the given compressibility.
    pub fn transfer_time(&self, bytes: u64, compressibility: f64) -> Duration {
        tapejoin_sim::transfer_time(bytes, self.effective_rate(compressibility))
    }

    /// Time to rewind over `bytes` of media.
    pub fn rewind_time(&self, bytes: u64) -> Duration {
        if self.rewind_rate.is_infinite() {
            return self.min_rewind;
        }
        self.min_rewind + tapejoin_sim::transfer_time(bytes, self.rewind_rate)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dlt4000_compression_rates_match_paper_regimes() {
        let m = TapeDriveModel::dlt4000();
        // 0% compressible: native 1.5 MB/s (Experiment 3 "slower tape").
        assert!((m.effective_rate(0.0) - 1.5e6).abs() < 1.0);
        // 25%: 2.0 MB/s (base case).
        assert!((m.effective_rate(0.25) - 2.0e6).abs() < 1.0);
        // 50%: 3.0 MB/s (faster tape), exactly at the 2x ceiling.
        assert!((m.effective_rate(0.5) - 3.0e6).abs() < 1.0);
        // 75% would exceed the ceiling: still 3.0 MB/s.
        assert!((m.effective_rate(0.75) - 3.0e6).abs() < 1.0);
    }

    #[test]
    fn rewind_is_orders_of_magnitude_faster_than_read() {
        let m = TapeDriveModel::dlt4000();
        let five_gb = 5_000_000_000u64;
        let read = m.transfer_time(five_gb, 0.25);
        let rewind = m.rewind_time(five_gb);
        assert!(read.as_secs_f64() > 2000.0);
        assert!(rewind.as_secs_f64() < 15.0);
    }

    #[test]
    fn rate_multiplier_scales_throughput() {
        let m = TapeDriveModel::ideal(1e6).with_rate_multiplier(4.0);
        assert_eq!(m.transfer_time(4_000_000, 0.0), Duration::from_secs(1));
    }

    #[test]
    #[should_panic(expected = "compressibility")]
    fn rejects_invalid_compressibility() {
        TapeDriveModel::dlt4000().effective_rate(1.0);
    }
}
