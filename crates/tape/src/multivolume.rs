//! Relations spanning multiple cartridges.
//!
//! The paper assumes "without loss of generality … that each relation
//! fits on a single tape". This module lifts that assumption at the
//! substrate level: a [`MultiVolume`] presents a contiguous logical block
//! space backed by segments on several cartridges, read through one drive
//! with a [`TapeLibrary`] robot swapping cartridges on demand. Media
//! exchanges (~30 s) are charged where they occur — for end-to-end scans
//! they stay negligible against transfer time, exactly the argument the
//! paper makes for ignoring them.

use std::cell::RefCell;
use std::rc::Rc;

use crate::drive::TapeDrive;
use crate::error::TapeError;
use crate::library::TapeLibrary;
use crate::media::{TapeBlock, TapeExtent};

/// One piece of the logical space: an extent on the cartridge currently
/// stored in `slot`.
#[derive(Clone, Copy, Debug)]
pub struct Segment {
    /// Library slot initially holding the cartridge.
    pub slot: usize,
    /// Extent of this segment's data on that cartridge.
    pub extent: TapeExtent,
}

struct VolumeState {
    /// Current library slot of each volume (`None` while mounted).
    slot_of: Vec<Option<usize>>,
    /// Which volume the drive currently holds, if it is one of ours.
    mounted: Option<usize>,
}

/// A logical sequential block space spanning several cartridges.
pub struct MultiVolume {
    drive: TapeDrive,
    library: TapeLibrary,
    segments: Vec<Segment>,
    // lint:allow(L9, multivolume chain state owned by one member's executor)
    state: Rc<RefCell<VolumeState>>,
}

impl MultiVolume {
    /// Assemble a multi-volume view. Each segment's cartridge must
    /// currently sit in its stated library slot; the drive must be empty
    /// (the robot performs the first mount).
    pub fn new(drive: TapeDrive, library: TapeLibrary, segments: Vec<Segment>) -> Self {
        assert!(!segments.is_empty(), "need at least one segment");
        assert!(
            drive.media().is_none(),
            "drive must start empty; the robot mounts volumes on demand"
        );
        for s in &segments {
            assert!(
                library.slot(s.slot).is_some(),
                "segment cartridge missing from library slot {}",
                s.slot
            );
        }
        let slot_of = segments.iter().map(|s| Some(s.slot)).collect();
        MultiVolume {
            drive,
            library,
            segments,
            state: Rc::new(RefCell::new(VolumeState {
                slot_of,
                mounted: None,
            })),
        }
    }

    /// Total logical length in blocks.
    pub fn len(&self) -> u64 {
        self.segments.iter().map(|s| s.extent.len).sum()
    }

    /// `true` when the logical space is empty (never: construction
    /// requires a segment, but provided for API completeness).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of cartridges.
    pub fn volumes(&self) -> usize {
        self.segments.len()
    }

    /// Read `count` logical blocks starting at `pos`, exchanging
    /// cartridges wherever the range crosses a volume boundary.
    ///
    /// A range reaching past the logical end is a
    /// [`TapeError::BeyondLogicalEnd`] — typed, like the robot's
    /// [`LibraryError`](crate::LibraryError)s, so a workload scheduler
    /// can fail one query instead of the whole fleet.
    pub async fn read(&self, pos: u64, count: u64) -> Result<Vec<TapeBlock>, TapeError> {
        if pos + count > self.len() {
            return Err(TapeError::BeyondLogicalEnd {
                pos: pos + count,
                len: self.len(),
            });
        }
        let mut out = Vec::with_capacity(count as usize);
        let mut remaining = count;
        let mut cursor = pos;
        while remaining > 0 {
            let (vol, offset) = self.locate(cursor)?;
            let seg = self.segments[vol];
            let n = remaining.min(seg.extent.len - offset);
            self.ensure_mounted(vol).await?;
            let blocks = self.drive.read(seg.extent.start + offset, n).await;
            out.extend(blocks);
            cursor += n;
            remaining -= n;
        }
        Ok(out)
    }

    /// Map a logical position to `(volume index, offset within it)`.
    fn locate(&self, pos: u64) -> Result<(usize, u64), TapeError> {
        let mut base = 0;
        for (i, s) in self.segments.iter().enumerate() {
            if pos < base + s.extent.len {
                return Ok((i, pos - base));
            }
            base += s.extent.len;
        }
        Err(TapeError::BeyondLogicalEnd {
            pos,
            len: self.len(),
        })
    }

    /// Swap the required cartridge in, tracking where the displaced one
    /// lands (the robot puts the outgoing cartridge into the slot the
    /// incoming one vacated).
    async fn ensure_mounted(&self, vol: usize) -> Result<(), TapeError> {
        let (already, slot) = {
            let st = self.state.borrow();
            if st.mounted == Some(vol) {
                (true, 0)
            } else {
                match st.slot_of[vol] {
                    Some(slot) => (false, slot),
                    None => return Err(TapeError::VolumeNotInSlot { volume: vol }),
                }
            }
        };
        if already {
            return Ok(());
        }
        self.library.exchange(&self.drive, slot).await?;
        let mut st = self.state.borrow_mut();
        if let Some(prev) = st.mounted.take() {
            st.slot_of[prev] = Some(slot);
        }
        st.slot_of[vol] = None;
        st.mounted = Some(vol);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::media::TapeMedia;
    use crate::model::TapeDriveModel;
    use tapejoin_rel::{RelationSpec, WorkloadBuilder};
    use tapejoin_sim::{now, Duration, Simulation};

    const BLOCK: u64 = 1 << 16;

    /// Three 40-block volumes holding one 120-block relation.
    fn setup() -> (MultiVolume, Vec<u64>) {
        let w = WorkloadBuilder::new(77)
            .r(RelationSpec::new("archive", 120).tuples_per_block(2))
            .build();
        let blocks = w.r.blocks();
        let library = TapeLibrary::new(3, Duration::from_secs(30));
        let mut segments = Vec::new();
        let mut expected_keys = Vec::new();
        for (i, chunk) in blocks.chunks(40).enumerate() {
            let media = TapeMedia::blank(format!("VOL{i}"), 64);
            let rel = tapejoin_rel::Relation::new(format!("part{i}"), chunk.to_vec(), 0.25);
            let extent = media.load_relation(&rel);
            library.store(i, media).unwrap();
            segments.push(Segment { slot: i, extent });
        }
        for b in blocks {
            for t in b.tuples() {
                expected_keys.push(t.key);
            }
        }
        let drive = TapeDrive::new("d0", TapeDriveModel::ideal(1e6), BLOCK);
        (MultiVolume::new(drive, library, segments), expected_keys)
    }

    #[test]
    fn sequential_scan_crosses_volumes() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (mv, expected) = setup();
            assert_eq!(mv.len(), 120);
            assert_eq!(mv.volumes(), 3);
            let blocks = mv.read(0, 120).await.expect("in range");
            let keys: Vec<u64> = blocks
                .iter()
                .flat_map(|tb| tb.data.tuples().iter().map(|t| t.key))
                .collect();
            assert_eq!(keys, expected);
            // Three mounts: 90 s of robot time + transfer.
            let transfer = 120.0 * BLOCK as f64 / 1e6;
            assert!((now().as_secs_f64() - (90.0 + transfer)).abs() < 1e-6);
        });
    }

    #[test]
    fn boundary_straddling_read() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (mv, expected) = setup();
            // 20 blocks straddling the volume-0/volume-1 boundary.
            let blocks = mv.read(30, 20).await.expect("in range");
            let keys: Vec<u64> = blocks
                .iter()
                .flat_map(|tb| tb.data.tuples().iter().map(|t| t.key))
                .collect();
            assert_eq!(keys, expected[60..100]); // 2 tuples per block
        });
    }

    #[test]
    fn revisiting_a_volume_exchanges_again() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (mv, _) = setup();
            mv.read(0, 10).await.expect("in range"); // mounts VOL0
            mv.read(50, 10).await.expect("in range"); // swaps to VOL1
            mv.read(5, 10).await.expect("in range"); // swaps back to VOL0
            assert_eq!(mv.library.exchanges(), 3);
        });
    }

    #[test]
    fn no_exchange_when_staying_on_one_volume() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (mv, _) = setup();
            mv.read(0, 10).await.expect("in range");
            mv.read(10, 10).await.expect("in range");
            mv.read(20, 10).await.expect("in range");
            assert_eq!(mv.library.exchanges(), 1);
        });
    }

    #[test]
    fn out_of_range_read_is_a_typed_error() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (mv, _) = setup();
            let err = mv.read(110, 20).await.unwrap_err();
            assert_eq!(
                err,
                crate::TapeError::BeyondLogicalEnd { pos: 130, len: 120 }
            );
            // The failed read consumed no robot or drive time.
            assert_eq!(now(), tapejoin_sim::SimTime::ZERO);
        });
    }
}
