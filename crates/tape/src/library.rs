//! Automated tape library (robot): cartridge slots and media exchange.
//!
//! The paper's cost model treats media switches (~30 s) as negligible
//! against multi-hour transfers, and assumes each relation fits one tape
//! that is pre-loaded. The robot is modelled anyway so that multi-cartridge
//! relations and exchange overheads can be explored (see the
//! `tape_library` example).
//!
//! Robot operations return typed [`LibraryError`]s rather than panicking:
//! a workload scheduler juggling many cartridges must be able to handle a
//! mount miss (wrong slot, label not in the library, all slots full)
//! gracefully, not crash the whole fleet.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tapejoin_sim::{Duration, Server};

use crate::drive::TapeDrive;
use crate::media::TapeMedia;

/// A robot operation that could not be carried out.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LibraryError {
    /// Slot index beyond the library's capacity.
    NoSuchSlot {
        /// The requested slot.
        slot: usize,
        /// How many slots the library has.
        slots: usize,
    },
    /// Tried to take a cartridge from an empty slot.
    EmptySlot {
        /// The empty slot.
        slot: usize,
    },
    /// Tried to store a cartridge into an occupied slot.
    OccupiedSlot {
        /// The occupied slot.
        slot: usize,
    },
    /// No cartridge with the requested barcode label anywhere in the
    /// library.
    LabelNotFound {
        /// The label searched for.
        label: String,
    },
    /// Every storage slot is occupied.
    NoFreeSlot,
    /// The drive holds no cartridge to put away.
    DriveEmpty,
}

impl fmt::Display for LibraryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LibraryError::NoSuchSlot { slot, slots } => {
                write!(f, "library has no slot {slot} (capacity {slots})")
            }
            LibraryError::EmptySlot { slot } => write!(f, "slot {slot} is empty"),
            LibraryError::OccupiedSlot { slot } => write!(f, "slot {slot} is occupied"),
            LibraryError::LabelNotFound { label } => {
                write!(f, "no cartridge labelled '{label}' in the library")
            }
            LibraryError::NoFreeSlot => write!(f, "no free storage slot"),
            LibraryError::DriveEmpty => write!(f, "drive holds no cartridge"),
        }
    }
}

impl std::error::Error for LibraryError {}

struct LibraryInner {
    slots: Vec<Option<TapeMedia>>,
    exchanges: u64,
}

/// A tape robot with storage slots. One exchange arm: concurrent exchange
/// requests queue FIFO.
#[derive(Clone)]
pub struct TapeLibrary {
    exchange_time: Duration,
    arm: Server,
    // lint:allow(L9, tape-library state owned by one member's executor)
    inner: Rc<RefCell<LibraryInner>>,
}

impl TapeLibrary {
    /// Create a library with `slots` storage slots and the given exchange
    /// time (~30 s on the paper's hardware).
    pub fn new(slots: usize, exchange_time: Duration) -> Self {
        TapeLibrary {
            exchange_time,
            arm: Server::new("tape-robot"),
            inner: Rc::new(RefCell::new(LibraryInner {
                slots: vec![None; slots],
                exchanges: 0,
            })),
        }
    }

    /// Number of storage slots.
    pub fn slots(&self) -> usize {
        self.inner.borrow().slots.len()
    }

    /// Put a cartridge into a specific empty slot (no arm time: slot
    /// loading happens through the operator door, outside the simulation).
    pub fn store(&self, slot: usize, media: TapeMedia) -> Result<(), LibraryError> {
        let mut inner = self.inner.borrow_mut();
        let slots = inner.slots.len();
        let cell = inner
            .slots
            .get_mut(slot)
            .ok_or(LibraryError::NoSuchSlot { slot, slots })?;
        if cell.is_some() {
            return Err(LibraryError::OccupiedSlot { slot });
        }
        *cell = Some(media);
        Ok(())
    }

    /// Put a cartridge into the first free slot, returning the slot used.
    pub fn store_anywhere(&self, media: TapeMedia) -> Result<usize, LibraryError> {
        let mut inner = self.inner.borrow_mut();
        let slot = inner
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or(LibraryError::NoFreeSlot)?;
        inner.slots[slot] = Some(media);
        Ok(slot)
    }

    /// Peek at a slot's contents.
    pub fn slot(&self, slot: usize) -> Option<TapeMedia> {
        self.inner.borrow().slots.get(slot).cloned().flatten()
    }

    /// Locate a stored cartridge by barcode label. `None` if no slot
    /// holds it (it may be mounted in a drive, or not exist at all).
    pub fn find_by_label(&self, label: &str) -> Option<usize> {
        self.inner
            .borrow()
            .slots
            .iter()
            .position(|s| s.as_ref().is_some_and(|m| m.label() == label))
    }

    /// Total exchanges performed.
    pub fn exchanges(&self) -> u64 {
        self.inner.borrow().exchanges
    }

    /// Swap the cartridge in `drive` with the one in `slot`: the mounted
    /// cartridge (if any) goes back to the slot, the slot's cartridge is
    /// loaded. Costs one arm exchange plus the drive's unload/load times.
    ///
    /// An invalid or empty slot fails *before* any arm time is charged —
    /// the robot knows its inventory without moving. An [`EmptySlot`]
    /// error is still possible after queueing, if a concurrent exchange
    /// emptied the slot while this request waited for the arm; that one
    /// costs the wasted arm move, as it would on real hardware.
    ///
    /// [`EmptySlot`]: LibraryError::EmptySlot
    pub async fn exchange(&self, drive: &TapeDrive, slot: usize) -> Result<(), LibraryError> {
        {
            let inner = self.inner.borrow();
            let slots = inner.slots.len();
            let cell = inner
                .slots
                .get(slot)
                .ok_or(LibraryError::NoSuchSlot { slot, slots })?;
            if cell.is_none() {
                return Err(LibraryError::EmptySlot { slot });
            }
        }
        // Serialize on the robot arm for the mechanical move.
        self.arm.serve(self.exchange_time).await;
        let incoming = {
            let mut inner = self.inner.borrow_mut();
            inner.exchanges += 1;
            inner.slots[slot]
                .take()
                .ok_or(LibraryError::EmptySlot { slot })?
        };
        if drive.media().is_some() {
            let outgoing = drive.unload().await;
            let mut inner = self.inner.borrow_mut();
            inner.slots[slot] = Some(outgoing);
        }
        drive.load(incoming).await;
        Ok(())
    }

    /// Put the drive's cartridge away into the first free slot, returning
    /// the slot used. Costs one arm exchange plus the drive's unload time.
    pub async fn eject(&self, drive: &TapeDrive) -> Result<usize, LibraryError> {
        if drive.media().is_none() {
            return Err(LibraryError::DriveEmpty);
        }
        {
            let inner = self.inner.borrow();
            if !inner.slots.iter().any(Option::is_none) {
                return Err(LibraryError::NoFreeSlot);
            }
        }
        self.arm.serve(self.exchange_time).await;
        let outgoing = drive.unload().await;
        let mut inner = self.inner.borrow_mut();
        inner.exchanges += 1;
        let slot = inner
            .slots
            .iter()
            .position(Option::is_none)
            .ok_or(LibraryError::NoFreeSlot)?;
        inner.slots[slot] = Some(outgoing);
        Ok(slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TapeDriveModel;
    use tapejoin_sim::{now, SimTime, Simulation};

    #[test]
    fn exchange_swaps_media_and_charges_time() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(4, Duration::from_secs(30));
            let a = TapeMedia::blank("A", 10);
            let b = TapeMedia::blank("B", 10);
            lib.store(0, a).unwrap();
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            drive.load(b).await;
            let t0 = now();
            lib.exchange(&drive, 0).await.unwrap();
            assert_eq!(now() - t0, Duration::from_secs(30));
            assert_eq!(drive.media().unwrap().label(), "A");
            assert_eq!(lib.slot(0).unwrap().label(), "B");
            assert_eq!(lib.exchanges(), 1);
        });
    }

    #[test]
    fn exchange_into_empty_drive() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(1, Duration::from_secs(30));
            lib.store(0, TapeMedia::blank("A", 10)).unwrap();
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            lib.exchange(&drive, 0).await.unwrap();
            assert_eq!(drive.media().unwrap().label(), "A");
            assert!(lib.slot(0).is_none());
        });
    }

    #[test]
    fn exchanging_from_empty_slot_errors_without_arm_time() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(1, Duration::from_secs(30));
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            let err = lib.exchange(&drive, 0).await.unwrap_err();
            assert_eq!(err, LibraryError::EmptySlot { slot: 0 });
            assert_eq!(now(), SimTime::ZERO, "no arm time charged");
            assert_eq!(lib.exchanges(), 0);
        });
    }

    #[test]
    fn exchanging_nonexistent_slot_errors() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(2, Duration::from_secs(30));
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            let err = lib.exchange(&drive, 7).await.unwrap_err();
            assert_eq!(err, LibraryError::NoSuchSlot { slot: 7, slots: 2 });
        });
    }

    #[test]
    fn storing_into_occupied_slot_errors() {
        let lib = TapeLibrary::new(1, Duration::from_secs(30));
        lib.store(0, TapeMedia::blank("A", 1)).unwrap();
        assert_eq!(
            lib.store(0, TapeMedia::blank("B", 1)),
            Err(LibraryError::OccupiedSlot { slot: 0 })
        );
        assert_eq!(
            lib.store(9, TapeMedia::blank("B", 1)),
            Err(LibraryError::NoSuchSlot { slot: 9, slots: 1 })
        );
    }

    #[test]
    fn find_by_label_and_store_anywhere() {
        let lib = TapeLibrary::new(3, Duration::from_secs(30));
        lib.store(1, TapeMedia::blank("S-42", 1)).unwrap();
        assert_eq!(lib.find_by_label("S-42"), Some(1));
        assert_eq!(lib.find_by_label("missing"), None);
        assert_eq!(lib.store_anywhere(TapeMedia::blank("R-1", 1)), Ok(0));
        assert_eq!(lib.store_anywhere(TapeMedia::blank("R-2", 1)), Ok(2));
        assert_eq!(lib.find_by_label("R-2"), Some(2));
        assert_eq!(
            lib.store_anywhere(TapeMedia::blank("R-3", 1)),
            Err(LibraryError::NoFreeSlot)
        );
        assert_eq!(lib.slots(), 3);
    }

    #[test]
    fn eject_parks_the_mounted_cartridge() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(2, Duration::from_secs(30));
            lib.store(0, TapeMedia::blank("A", 1)).unwrap();
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            assert_eq!(lib.eject(&drive).await, Err(LibraryError::DriveEmpty));
            drive.load(TapeMedia::blank("B", 1)).await;
            let slot = lib.eject(&drive).await.unwrap();
            assert_eq!(slot, 1, "first free slot");
            assert!(drive.media().is_none());
            assert_eq!(lib.slot(1).unwrap().label(), "B");
            assert_eq!(now(), SimTime::ZERO + Duration::from_secs(30));
        });
    }
}
