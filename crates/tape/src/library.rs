//! Automated tape library (robot): cartridge slots and media exchange.
//!
//! The paper's cost model treats media switches (~30 s) as negligible
//! against multi-hour transfers, and assumes each relation fits one tape
//! that is pre-loaded. The robot is modelled anyway so that multi-cartridge
//! relations and exchange overheads can be explored (see the
//! `tape_library` example).

use std::cell::RefCell;
use std::rc::Rc;

use tapejoin_sim::{Duration, Server};

use crate::drive::TapeDrive;
use crate::media::TapeMedia;

struct LibraryInner {
    slots: Vec<Option<TapeMedia>>,
    exchanges: u64,
}

/// A tape robot with storage slots. One exchange arm: concurrent exchange
/// requests queue FIFO.
#[derive(Clone)]
pub struct TapeLibrary {
    exchange_time: Duration,
    arm: Server,
    inner: Rc<RefCell<LibraryInner>>,
}

impl TapeLibrary {
    /// Create a library with `slots` storage slots and the given exchange
    /// time (~30 s on the paper's hardware).
    pub fn new(slots: usize, exchange_time: Duration) -> Self {
        TapeLibrary {
            exchange_time,
            arm: Server::new("tape-robot"),
            inner: Rc::new(RefCell::new(LibraryInner {
                slots: vec![None; slots],
                exchanges: 0,
            })),
        }
    }

    /// Put a cartridge into a specific empty slot.
    pub fn store(&self, slot: usize, media: TapeMedia) {
        let mut inner = self.inner.borrow_mut();
        let cell = inner
            .slots
            .get_mut(slot)
            .unwrap_or_else(|| panic!("library has no slot {slot}"));
        assert!(cell.is_none(), "slot {slot} is occupied");
        *cell = Some(media);
    }

    /// Peek at a slot's contents.
    pub fn slot(&self, slot: usize) -> Option<TapeMedia> {
        self.inner.borrow().slots.get(slot).cloned().flatten()
    }

    /// Total exchanges performed.
    pub fn exchanges(&self) -> u64 {
        self.inner.borrow().exchanges
    }

    /// Swap the cartridge in `drive` with the one in `slot`: the mounted
    /// cartridge (if any) goes back to the slot, the slot's cartridge is
    /// loaded. Costs one arm exchange plus the drive's unload/load times.
    pub async fn exchange(&self, drive: &TapeDrive, slot: usize) {
        // Serialize on the robot arm for the mechanical move.
        self.arm.serve(self.exchange_time).await;
        let incoming = {
            let mut inner = self.inner.borrow_mut();
            inner.exchanges += 1;
            inner
                .slots
                .get_mut(slot)
                .unwrap_or_else(|| panic!("library has no slot {slot}"))
                .take()
                .unwrap_or_else(|| panic!("slot {slot} is empty"))
        };
        if drive.media().is_some() {
            let outgoing = drive.unload().await;
            let mut inner = self.inner.borrow_mut();
            inner.slots[slot] = Some(outgoing);
        }
        drive.load(incoming).await;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TapeDriveModel;
    use tapejoin_sim::{now, Simulation};

    #[test]
    fn exchange_swaps_media_and_charges_time() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(4, Duration::from_secs(30));
            let a = TapeMedia::blank("A", 10);
            let b = TapeMedia::blank("B", 10);
            lib.store(0, a);
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            drive.load(b).await;
            let t0 = now();
            lib.exchange(&drive, 0).await;
            assert_eq!((now() - t0).as_secs_f64(), 30.0);
            assert_eq!(drive.media().unwrap().label(), "A");
            assert_eq!(lib.slot(0).unwrap().label(), "B");
            assert_eq!(lib.exchanges(), 1);
        });
    }

    #[test]
    fn exchange_into_empty_drive() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(1, Duration::from_secs(30));
            lib.store(0, TapeMedia::blank("A", 10));
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            lib.exchange(&drive, 0).await;
            assert_eq!(drive.media().unwrap().label(), "A");
            assert!(lib.slot(0).is_none());
        });
    }

    #[test]
    #[should_panic(expected = "is empty")]
    fn exchanging_from_empty_slot_panics() {
        let mut sim = Simulation::new();
        sim.run(async {
            let lib = TapeLibrary::new(1, Duration::from_secs(30));
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), 1 << 16);
            lib.exchange(&drive, 0).await;
        });
    }

    #[test]
    #[should_panic(expected = "occupied")]
    fn storing_into_occupied_slot_panics() {
        let lib = TapeLibrary::new(1, Duration::from_secs(30));
        lib.store(0, TapeMedia::blank("A", 1));
        lib.store(0, TapeMedia::blank("B", 1));
    }
}
