//! Typed tape-substrate errors.
//!
//! Multi-volume reads used to `panic!` on an out-of-range position. Like
//! the robot's [`LibraryError`](crate::LibraryError), these conditions
//! are the scheduler's to handle — a fleet juggling many cartridges must
//! fail one query, not the whole process.

use std::fmt;

use crate::library::LibraryError;

/// An error from the tape substrate (drives, multi-volume views).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TapeError {
    /// A logical position past the end of a multi-volume space.
    BeyondLogicalEnd {
        /// First out-of-range position touched by the request.
        pos: u64,
        /// The logical length of the volume set, in blocks.
        len: u64,
    },
    /// A volume that should be resident in a library slot is not
    /// (internal bookkeeping violation surfaced instead of panicking).
    VolumeNotInSlot {
        /// Index of the volume within the multi-volume set.
        volume: usize,
    },
    /// The robot failed the media exchange.
    Library(LibraryError),
}

impl From<LibraryError> for TapeError {
    fn from(e: LibraryError) -> Self {
        TapeError::Library(e)
    }
}

impl fmt::Display for TapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TapeError::BeyondLogicalEnd { pos, len } => {
                write!(f, "position {pos} beyond logical end {len}")
            }
            TapeError::VolumeNotInSlot { volume } => {
                write!(
                    f,
                    "volume {volume} is neither mounted nor in a tracked slot"
                )
            }
            TapeError::Library(e) => write!(f, "library: {e}"),
        }
    }
}

impl std::error::Error for TapeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TapeError::Library(e) => Some(e),
            _ => None,
        }
    }
}
