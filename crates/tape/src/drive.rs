//! The tape drive: a FIFO device serving reads/appends/rewinds with
//! modelled timing.
//!
//! lint:allow-file(L9, tape-drive device model; state is shared only between the drive's tasks on the owning member's executor)

use std::cell::RefCell;
use std::rc::Rc;

use tapejoin_obs::{Recorder, SpanKind};
use tapejoin_sim::{Duration, Server};

use crate::fault::{BlockFault, TapeFaultInjector, TapeFaultPolicy};
use crate::media::{TapeBlock, TapeExtent, TapeMedia};
use crate::model::TapeDriveModel;

/// Cumulative per-drive statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct TapeStats {
    /// Blocks transferred tape → host.
    pub blocks_read: u64,
    /// Blocks transferred host → tape.
    pub blocks_written: u64,
    /// Head relocations to a non-adjacent position.
    pub repositions: u64,
    /// Rewind operations.
    pub rewinds: u64,
    /// Cartridge loads.
    pub loads: u64,
    /// Stop/start (back-hitch) events charged.
    pub stop_starts: u64,
    /// Total time spent transferring data (excludes mechanical delays).
    pub transfer_time: Duration,
    /// Injected transient read errors recovered by ECC re-reads.
    pub transient_faults: u64,
    /// Injected hard faults recovered by a media exchange (including
    /// transients that exhausted their re-read budget).
    pub hard_faults: u64,
    /// Total re-read attempts across all injected faults.
    pub fault_retries: u64,
    /// Hard faults beyond the policy's exchange budget (unrecoverable).
    pub failed_faults: u64,
    /// Total service time attributable to fault recovery (re-reads,
    /// repositioning, media exchanges). Disjoint from `transfer_time`.
    pub fault_time: Duration,
}

/// Which way the head is moving.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Direction {
    Forward,
    Reverse,
}

struct DriveState {
    media: Option<TapeMedia>,
    /// Current head position (block index). Reads/writes here stream;
    /// anywhere else repositions first.
    position: u64,
    /// Media exchanges performed by the *current physical unit*. Matches
    /// `stats.hard_faults` until the first [`TapeDrive::replace_unit`],
    /// which resets it (the cumulative stats keep counting).
    exchanges: u64,
    /// Sticky: the unit exceeded its exchange budget and is dead. Set in
    /// [`TapeDrive::block_fault_cost`], cleared only by
    /// [`TapeDrive::replace_unit`].
    failed: bool,
    /// Whether the previous operation left the drive streaming (a
    /// stop/start penalty applies when streaming resumes after a break,
    /// if the model charges one).
    streaming: bool,
    /// Direction of the last transfer; continuing in the same direction
    /// streams, turning around costs a stop/start (direction reversal is
    /// a back-hitch even on a READ REVERSE capable drive).
    direction: Direction,
    /// Verify block checksums on every read (panics loudly on a
    /// mismatch, surfacing silent media corruption).
    verify_reads: bool,
    /// When the last transfer finished; a pause beyond the model's
    /// streaming grace drains the drive's internal buffer and the next
    /// access back-hitches.
    ready_until: tapejoin_sim::SimTime,
    /// Fault injector, when a fault policy is attached.
    fault: Option<TapeFaultInjector>,
    /// Observability handle; fault-recovery intervals are recorded as
    /// `fault` spans on the drive's track. Disabled by default.
    recorder: Recorder,
    /// Track name for recorded spans (the server's name).
    track: Rc<str>,
    stats: TapeStats,
}

/// A tape drive attached to the simulated machine.
///
/// All operations queue FIFO on the drive; operations on different drives
/// overlap in virtual time. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct TapeDrive {
    name: Rc<str>,
    model: Rc<TapeDriveModel>,
    block_bytes: u64,
    server: Server,
    state: Rc<RefCell<DriveState>>,
}

impl TapeDrive {
    /// Create a drive with the given model and block size.
    pub fn new(name: impl Into<String>, model: TapeDriveModel, block_bytes: u64) -> Self {
        assert!(block_bytes > 0, "block size must be positive");
        let name = name.into();
        let track: Rc<str> = Rc::from(format!("tape-drive:{name}").into_boxed_str());
        TapeDrive {
            server: Server::new(track.to_string()),
            name: Rc::from(name.into_boxed_str()),
            model: Rc::new(model),
            block_bytes,
            state: Rc::new(RefCell::new(DriveState {
                media: None,
                position: 0,
                exchanges: 0,
                failed: false,
                streaming: false,
                direction: Direction::Forward,
                verify_reads: false,
                ready_until: tapejoin_sim::SimTime::ZERO,
                fault: None,
                recorder: Recorder::disabled(),
                track,
                stats: TapeStats::default(),
            })),
        }
    }

    /// Drive name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The drive's performance model.
    pub fn model(&self) -> &TapeDriveModel {
        &self.model
    }

    /// Block size this drive was configured with.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> TapeStats {
        self.state.borrow().stats
    }

    /// Queueing statistics of the drive's FIFO service center — busy
    /// time, queue depth and per-request waits. This is where contention
    /// between concurrent queries sharing the drive shows up.
    pub fn server_stats(&self) -> tapejoin_sim::ServerStats {
        self.server.stats()
    }

    /// Attach an observability recorder: every service interval becomes a
    /// `device-op` span and every injected fault's recovery interval a
    /// `fault` span, both on the track `tape-drive:{name}`. A disabled
    /// recorder is a no-op.
    pub fn set_recorder(&self, rec: Recorder) {
        self.server.attach_observer(Rc::new(rec.share()));
        self.state.borrow_mut().recorder = rec;
    }

    /// Enable/disable checksum verification on reads. A mismatch panics
    /// with the block position — tape media decays, and a production
    /// system must detect it rather than join garbage.
    pub fn set_verify_reads(&self, enabled: bool) {
        self.state.borrow_mut().verify_reads = enabled;
    }

    /// Attach a fault policy: subsequent reads draw from the policy's
    /// deterministic per-drive stream and charge the modelled recovery
    /// time (ECC re-reads with repositioning; media exchanges for hard
    /// faults). Faults are timing-only — delivered data is never
    /// corrupted — and a policy with zero rates is an exact no-op.
    pub fn set_fault_policy(&self, policy: TapeFaultPolicy) {
        self.state.borrow_mut().fault = Some(TapeFaultInjector::new(policy));
    }

    /// Whether the current physical unit exceeded its media-exchange
    /// budget and must be swapped out (see [`TapeDrive::replace_unit`]).
    /// A failed drive still completes queued operations (data is never
    /// corrupted — faults are timing-only); callers that care about
    /// durability check this flag at their unit-of-work boundaries.
    pub fn has_failed(&self) -> bool {
        self.state.borrow().failed
    }

    /// Swap in a spare physical unit: clears the failed flag, resets the
    /// per-unit exchange counter and removes the fault injector — the
    /// spare is a pristine drive with fresh media heads, so it draws no
    /// further faults. The mounted cartridge (really its duplicate, per
    /// the exchange-recovery model) and head position carry over; the
    /// caller charges the swap delay separately. Cumulative statistics
    /// are *not* reset — they describe the whole join, across units.
    pub fn replace_unit(&self) {
        let mut st = self.state.borrow_mut();
        st.failed = false;
        st.exchanges = 0;
        st.fault = None;
    }

    /// Currently mounted cartridge, if any.
    pub fn media(&self) -> Option<TapeMedia> {
        self.state.borrow().media.clone()
    }

    /// Current head position.
    pub fn position(&self) -> u64 {
        self.state.borrow().position
    }

    /// Mount a cartridge at zero cost — the paper's setup assumption that
    /// "the tapes have been inserted and loaded into the tape drives
    /// before the join operation begins" (§3.2). Use [`TapeDrive::load`]
    /// for a timed load.
    pub fn mount(&self, media: TapeMedia) {
        let mut st = self.state.borrow_mut();
        assert!(st.media.is_none(), "drive already has a cartridge loaded");
        st.media = Some(media);
        st.position = 0;
        st.streaming = true;
    }

    /// Mount and thread a cartridge (head at position 0).
    pub async fn load(&self, media: TapeMedia) {
        let state = Rc::clone(&self.state);
        let load_time = self.model.load_time;
        self.server
            .serve_with(move || {
                let mut st = state.borrow_mut();
                assert!(st.media.is_none(), "drive already has a cartridge loaded");
                st.media = Some(media);
                st.position = 0;
                // A freshly threaded drive is ramped up at BOT; the first
                // sequential access is not a back-hitch.
                st.streaming = true;
                st.stats.loads += 1;
                (load_time, ())
            })
            .await
    }

    /// Unload the cartridge (no rewind; call [`TapeDrive::rewind`] first
    /// if the robot requires it).
    pub async fn unload(&self) -> TapeMedia {
        let state = Rc::clone(&self.state);
        self.server
            .serve_with(move || {
                let mut st = state.borrow_mut();
                // lint:allow(L3, drive protocol: unload is only issued while a cartridge is loaded)
                let media = st.media.take().expect("no cartridge to unload");
                st.position = 0;
                st.streaming = false;
                (Duration::ZERO, media)
            })
            .await
    }

    /// Read `count` blocks starting at `pos`, charging reposition +
    /// transfer time.
    pub async fn read(&self, pos: u64, count: u64) -> Vec<TapeBlock> {
        let state = Rc::clone(&self.state);
        let model = Rc::clone(&self.model);
        let block_bytes = self.block_bytes;
        self.server
            .serve_with(move || {
                let mut st = state.borrow_mut();
                // lint:allow(L3, drive protocol: reads require a mounted cartridge)
                let media = st.media.clone().expect("read with no cartridge loaded");
                let mut service = Duration::ZERO;
                service +=
                    Self::head_motion_with(&mut st, &model, pos, Direction::Forward, block_bytes);
                let mut blocks = Vec::with_capacity(count as usize);
                let mut transfer = Duration::ZERO;
                let mut recovery = Duration::ZERO;
                for i in 0..count {
                    let tb = media.read_at(pos + i);
                    assert!(
                        !st.verify_reads || tb.data.verify(),
                        "checksum mismatch reading block {} — corrupted media",
                        pos + i
                    );
                    let block_time = model.transfer_time(block_bytes, tb.compressibility);
                    transfer += block_time;
                    let cost =
                        Self::block_fault_cost(&mut st, &model, pos + i, block_bytes, block_time);
                    if !cost.is_zero() {
                        // Recovery sits right after this block's transfer
                        // in the composed service interval.
                        let at = tapejoin_sim::now() + service + transfer + recovery;
                        let track = Rc::clone(&st.track);
                        st.recorder.leaf(
                            SpanKind::Fault,
                            track.as_ref(),
                            "fault-recovery",
                            at,
                            at + cost,
                        );
                    }
                    recovery += cost;
                    blocks.push(tb);
                }
                st.position = pos + count;
                st.streaming = true;
                st.direction = Direction::Forward;
                st.stats.blocks_read += count;
                st.stats.transfer_time += transfer;
                service += transfer + recovery;
                st.ready_until = tapejoin_sim::now() + service;
                (service, blocks)
            })
            .await
    }

    /// Read the next `count` blocks at the current head position
    /// (streaming read).
    pub async fn read_next(&self, count: u64) -> Vec<TapeBlock> {
        let pos = self.position();
        self.read(pos, count).await
    }

    /// Read `count` blocks *backwards*, ending just below `end` (i.e. the
    /// blocks `[end - count, end)`, returned in reverse media order) —
    /// the SCSI-2 `READ REVERSE` command the paper's §3.2 notes "would
    /// make rewinds unnecessary in all the algorithms we examine", since
    /// they are independent of the direction tuples are scanned in.
    ///
    /// Streams with no positioning cost when the head already sits at
    /// `end`; panics if the drive model lacks the capability.
    pub async fn read_reverse(&self, end: u64, count: u64) -> Vec<TapeBlock> {
        assert!(
            self.model.read_reverse,
            "drive '{}' ({}) cannot READ REVERSE",
            self.name, self.model.name
        );
        assert!(count <= end, "reverse read below beginning of tape");
        let state = Rc::clone(&self.state);
        let model = Rc::clone(&self.model);
        let block_bytes = self.block_bytes;
        self.server
            .serve_with(move || {
                let mut st = state.borrow_mut();
                // lint:allow(L3, drive protocol: reads require a mounted cartridge)
                let media = st.media.clone().expect("read with no cartridge loaded");
                let mut service = Duration::ZERO;
                service +=
                    Self::head_motion_with(&mut st, &model, end, Direction::Reverse, block_bytes);
                let mut blocks = Vec::with_capacity(count as usize);
                let mut transfer = Duration::ZERO;
                let mut recovery = Duration::ZERO;
                for i in 0..count {
                    let tb = media.read_at(end - 1 - i);
                    assert!(
                        !st.verify_reads || tb.data.verify(),
                        "checksum mismatch reading block {} — corrupted media",
                        end - 1 - i
                    );
                    let block_time = model.transfer_time(block_bytes, tb.compressibility);
                    transfer += block_time;
                    let cost = Self::block_fault_cost(
                        &mut st,
                        &model,
                        end - 1 - i,
                        block_bytes,
                        block_time,
                    );
                    if !cost.is_zero() {
                        let at = tapejoin_sim::now() + service + transfer + recovery;
                        let track = Rc::clone(&st.track);
                        st.recorder.leaf(
                            SpanKind::Fault,
                            track.as_ref(),
                            "fault-recovery",
                            at,
                            at + cost,
                        );
                    }
                    recovery += cost;
                    blocks.push(tb);
                }
                st.position = end - count;
                st.streaming = true;
                st.direction = Direction::Reverse;
                st.stats.blocks_read += count;
                st.stats.transfer_time += transfer;
                service += transfer + recovery;
                st.ready_until = tapejoin_sim::now() + service;
                (service, blocks)
            })
            .await
    }

    /// Append blocks at the end of data, charging reposition (if the head
    /// is elsewhere) + transfer time. Returns the extent written.
    pub async fn append(&self, blocks: Vec<TapeBlock>) -> TapeExtent {
        let state = Rc::clone(&self.state);
        let model = Rc::clone(&self.model);
        let block_bytes = self.block_bytes;
        self.server
            .serve_with(move || {
                let mut st = state.borrow_mut();
                // lint:allow(L3, drive protocol: appends require a mounted cartridge)
                let media = st.media.clone().expect("append with no cartridge loaded");
                let eod = media.end_of_data();
                let mut service = Duration::ZERO;
                service +=
                    Self::head_motion_with(&mut st, &model, eod, Direction::Forward, block_bytes);
                let mut transfer = Duration::ZERO;
                for tb in &blocks {
                    transfer += model.transfer_time(block_bytes, tb.compressibility);
                }
                let extent = media.append(&blocks);
                st.position = extent.end();
                st.streaming = true;
                st.direction = Direction::Forward;
                st.stats.blocks_written += blocks.len() as u64;
                st.stats.transfer_time += transfer;
                service += transfer;
                st.ready_until = tapejoin_sim::now() + service;
                (service, extent)
            })
            .await
    }

    /// Rewind to position 0 (fast; serpentine model).
    pub async fn rewind(&self) {
        let state = Rc::clone(&self.state);
        let model = Rc::clone(&self.model);
        let block_bytes = self.block_bytes;
        self.server
            .serve_with(move || {
                let mut st = state.borrow_mut();
                let dist_bytes = st.position * block_bytes;
                st.position = 0;
                st.streaming = false;
                st.stats.rewinds += 1;
                (model.rewind_time(dist_bytes), ())
            })
            .await
    }

    /// Draw and account the fault-recovery cost for one block read at
    /// media position `media_pos` whose clean transfer takes
    /// `block_time`. Returns `Duration::ZERO` when no injector is
    /// attached or the block read cleanly.
    ///
    /// A transient error costs `retries × (one-block reposition +
    /// re-transfer)` — the ECC re-read cycle. A hard fault additionally
    /// costs the media exchange, relocating the head from the duplicate
    /// cartridge's BOT back to the block, and the final re-read. The
    /// recovered block is always correct; faults only add time.
    fn block_fault_cost(
        st: &mut DriveState,
        model: &TapeDriveModel,
        media_pos: u64,
        block_bytes: u64,
        block_time: Duration,
    ) -> Duration {
        let Some(inj) = st.fault.as_mut() else {
            return Duration::ZERO;
        };
        let fault = inj.on_block_read();
        let policy = inj.policy.clone();
        let retry_cycle = |retries: u32| {
            (model.reposition_time(block_bytes) + block_time)
                .checked_mul(retries as u64)
                // lint:allow(L3, fault recovery cost overflow beyond u64 nanoseconds is unrepresentable)
                .expect("fault recovery cost overflow")
        };
        let cost = match fault {
            BlockFault::Clean => return Duration::ZERO,
            BlockFault::Transient { retries } => {
                st.stats.transient_faults += 1;
                st.stats.fault_retries += retries as u64;
                retry_cycle(retries)
            }
            BlockFault::Hard { retries } => {
                st.stats.hard_faults += 1;
                st.exchanges += 1;
                st.stats.fault_retries += retries as u64;
                if st.exchanges > policy.max_exchanges {
                    st.stats.failed_faults += 1;
                    st.failed = true;
                }
                retry_cycle(retries)
                    + policy.exchange_time
                    + model.reposition_time(media_pos * block_bytes)
                    + block_time
            }
        };
        st.stats.fault_time += cost;
        cost
    }

    /// Compute (and account) head-motion cost to begin an access at
    /// `target` moving in `direction`.
    fn head_motion_with(
        st: &mut DriveState,
        model: &TapeDriveModel,
        target: u64,
        direction: Direction,
        block_bytes: u64,
    ) -> Duration {
        if st.position == target {
            let paused_too_long = tapejoin_sim::now().saturating_duration_since(st.ready_until)
                > model.streaming_grace;
            if st.streaming && st.direction == direction && !paused_too_long {
                Duration::ZERO
            } else {
                // Resuming after a break in streaming, or turning the
                // head around: back-hitch.
                if !model.stop_start_penalty.is_zero() {
                    st.stats.stop_starts += 1;
                }
                model.stop_start_penalty
            }
        } else {
            st.streaming = false;
            st.stats.repositions += 1;
            let distance = st.position.abs_diff(target) * block_bytes;
            model.reposition_time(distance)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tapejoin_rel::{Block, Relation, RelationSpec, Tuple, WorkloadBuilder};
    use tapejoin_sim::{now, Simulation};

    const BLOCK: u64 = 1 << 16; // 64 KiB

    fn tape_with_relation(blocks: u64, compressibility: f64) -> (TapeMedia, Relation) {
        let w = WorkloadBuilder::new(9)
            .r(RelationSpec::new("R", blocks).compressibility(compressibility))
            .build();
        let tape = TapeMedia::blank("t", blocks * 4);
        tape.load_relation(&w.r);
        (tape, w.r)
    }

    #[test]
    fn sequential_read_time_matches_rate() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(16, 0.0);
            // 1 MB/s drive, 64 KiB blocks: 16 blocks = 1 MiB ≈ 1.048576 s.
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), BLOCK);
            drive.load(tape).await;
            let blocks = drive.read(0, 16).await;
            assert_eq!(blocks.len(), 16);
            let expect = 16.0 * BLOCK as f64 / 1e6;
            assert!((now().as_secs_f64() - expect).abs() < 1e-6);
            assert_eq!(drive.stats().blocks_read, 16);
            assert_eq!(drive.stats().repositions, 0);
        });
    }

    #[test]
    fn compressible_data_streams_faster() {
        let mut sim = Simulation::new();
        let t_incompressible = run_scan(0.0);
        let t_base = run_scan(0.25);
        let t_fast = run_scan(0.5);
        assert!(t_base < t_incompressible);
        assert!(t_fast < t_base);
        // Ratios for DLT-4000: 1.5 / 2.0 / 3.0 MB/s.
        assert!((t_incompressible / t_base - 2.0 / 1.5).abs() < 1e-6);
        assert!((t_base / t_fast - 3.0 / 2.0).abs() < 1e-6);

        fn run_scan(c: f64) -> f64 {
            let mut sim = Simulation::new();
            sim.run(async move {
                let (tape, _) = tape_with_relation(32, c);
                let drive = TapeDrive::new("d", TapeDriveModel::dlt4000(), BLOCK);
                let t0 = {
                    drive.load(tape).await;
                    now()
                };
                drive.read(0, 32).await;
                (now() - t0).as_secs_f64()
            })
        }
        let _ = &mut sim;
    }

    #[test]
    fn reposition_charged_once_for_non_adjacent_access() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(32, 0.0);
            let model = TapeDriveModel::ideal(1e6).with_reposition(Duration::from_secs(10));
            let drive = TapeDrive::new("d", model, BLOCK);
            drive.load(tape).await;
            drive.read(0, 4).await; // sequential from 0
            let t0 = now();
            drive.read(20, 4).await; // jump: reposition + transfer
            let elapsed = (now() - t0).as_secs_f64();
            let transfer = 4.0 * BLOCK as f64 / 1e6;
            assert!((elapsed - (10.0 + transfer)).abs() < 1e-6);
            assert_eq!(drive.stats().repositions, 1);
            // Continuing from 24 streams with no further penalty.
            let t1 = now();
            drive.read(24, 4).await;
            assert!(((now() - t1).as_secs_f64() - transfer).abs() < 1e-6);
            assert_eq!(drive.stats().repositions, 1);
        });
    }

    #[test]
    fn append_goes_to_end_of_data() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(8, 0.0);
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), BLOCK);
            drive.load(tape.clone()).await;
            let blk = TapeBlock {
                data: Rc::new(Block::new(vec![Tuple::new(1, 1)])),
                compressibility: 0.0,
            };
            let ext = drive.append(vec![blk.clone(), blk]).await;
            assert_eq!(ext, TapeExtent { start: 8, len: 2 });
            assert_eq!(tape.end_of_data(), 10);
            assert_eq!(drive.stats().blocks_written, 2);
        });
    }

    #[test]
    fn rewind_cost_scales_with_position_but_stays_small() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(64, 0.25);
            let drive = TapeDrive::new("d", TapeDriveModel::dlt4000(), BLOCK);
            drive.load(tape).await;
            drive.read(0, 64).await;
            let t0 = now();
            drive.rewind().await;
            let rewind = (now() - t0).as_secs_f64();
            assert!(rewind >= 2.0); // min_rewind
            assert!(rewind < 3.0); // tiny distance, serpentine
            assert_eq!(drive.position(), 0);
            assert_eq!(drive.stats().rewinds, 1);
        });
    }

    #[test]
    fn two_drives_overlap_in_virtual_time() {
        let mut sim = Simulation::new();
        let t = sim.run(async {
            let (tape_a, _) = tape_with_relation(16, 0.0);
            let (tape_b, _) = tape_with_relation(16, 0.0);
            let da = TapeDrive::new("a", TapeDriveModel::ideal(1e6), BLOCK);
            let db = TapeDrive::new("b", TapeDriveModel::ideal(1e6), BLOCK);
            da.load(tape_a).await;
            db.load(tape_b).await;
            let (da2, db2) = (da.clone(), db.clone());
            let (_, _) = tapejoin_sim::join2(async move { da2.read(0, 16).await }, async move {
                db2.read(0, 16).await
            })
            .await;
            now().as_secs_f64()
        });
        // Parallel: total = one scan, not two.
        assert!((t - 16.0 * BLOCK as f64 / 1e6).abs() < 1e-6);
    }

    #[test]
    fn stop_start_penalty_charged_on_resume() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(8, 0.0);
            let model = TapeDriveModel::ideal(1e6).with_stop_start(Duration::from_secs(3));
            let drive = TapeDrive::new("d", model, BLOCK);
            drive.load(tape).await;
            drive.read(0, 4).await;
            drive.rewind().await; // breaks streaming
            let t0 = now();
            drive.read(0, 4).await; // resume at same position: back-hitch
            let elapsed = (now() - t0).as_secs_f64();
            let transfer = 4.0 * BLOCK as f64 / 1e6;
            assert!((elapsed - (3.0 + transfer)).abs() < 1e-6);
            assert_eq!(drive.stats().stop_starts, 1);
        });
    }

    #[test]
    #[should_panic(expected = "no cartridge")]
    fn read_without_media_panics() {
        let mut sim = Simulation::new();
        sim.run(async {
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), BLOCK);
            drive.read(0, 1).await;
        });
    }

    /// Deterministic escalation: transient_rate = 1.0 makes every block
    /// exhaust its re-read budget and recover by media exchange, so every
    /// component of the recovery cost is exactly predictable.
    #[test]
    fn fault_retry_cost_charged_exactly_once() {
        let mut sim = Simulation::new();
        sim.run(async {
            let n = 8u64;
            let (tape, _) = tape_with_relation(n, 0.0);
            let model = TapeDriveModel::ideal(1e6).with_reposition(Duration::from_secs(2));
            let drive = TapeDrive::new("d", model, BLOCK);
            drive.load(tape).await;
            let policy = crate::fault::TapeFaultPolicy::new(5)
                .rates(1.0, 0.0)
                .max_retries(3)
                .exchange_time(Duration::from_secs(100));
            drive.set_fault_policy(policy);
            let t0 = now();
            drive.read(0, n).await;
            let elapsed = now() - t0;

            let block_time = Duration::from_nanos((BLOCK as f64 * 1e9 / 1e6).ceil() as u64);
            let repos = Duration::from_secs(2); // ideal model: fixed base only
                                                // Per block: 3 wasted re-reads (reposition + re-transfer each),
                                                // then exchange + relocate to the block + final re-read.
            let per_block_fault = |_pos: u64| {
                (repos + block_time).checked_mul(3).unwrap()
                    + Duration::from_secs(100)
                    + repos
                    + block_time
            };
            let expect_fault: Duration = (0..n).map(per_block_fault).sum();
            let expect_total = block_time.checked_mul(n).unwrap() + expect_fault;
            assert_eq!(elapsed, expect_total, "fault time must appear exactly once");

            let st = drive.stats();
            assert_eq!(st.hard_faults, n);
            assert_eq!(st.transient_faults, 0);
            assert_eq!(st.fault_retries, 3 * n);
            assert_eq!(st.failed_faults, 0);
            assert_eq!(st.fault_time, expect_fault);
            // The clean transfer-time ledger is unaffected by faults.
            assert_eq!(st.transfer_time, block_time.checked_mul(n).unwrap());
            assert_eq!(st.blocks_read, n);
        });
    }

    /// Busy-time identity under a probabilistic fault mix: whatever the
    /// draws were, elapsed = clean elapsed + the stats' fault_time, and
    /// same-seed runs are bit-identical.
    #[test]
    fn fault_time_accounts_for_entire_slowdown() {
        fn scan(policy: Option<crate::fault::TapeFaultPolicy>) -> (Duration, TapeStats) {
            let mut sim = Simulation::new();
            sim.run(async move {
                let (tape, _) = tape_with_relation(64, 0.0);
                let drive = TapeDrive::new("d", TapeDriveModel::dlt4000(), BLOCK);
                drive.load(tape).await;
                if let Some(p) = policy {
                    drive.set_fault_policy(p);
                }
                let t0 = now();
                drive.read(0, 64).await;
                (now() - t0, drive.stats())
            })
        }
        let policy = crate::fault::TapeFaultPolicy::new(17).rates(0.2, 0.02);
        let (clean, clean_stats) = scan(None);
        let (a, sa) = scan(Some(policy.clone()));
        let (b, sb) = scan(Some(policy));
        assert!(sa.transient_faults + sa.hard_faults > 0, "no faults drawn");
        assert_eq!(a, clean + sa.fault_time, "unattributed slowdown");
        assert_eq!(clean_stats.fault_time, Duration::ZERO);
        // Same seed, same schedule, same timing.
        assert_eq!(a, b);
        assert_eq!(sa.transient_faults, sb.transient_faults);
        assert_eq!(sa.hard_faults, sb.hard_faults);
        assert_eq!(sa.fault_retries, sb.fault_retries);
        assert_eq!(sa.fault_time, sb.fault_time);
    }

    /// Exceeding the exchange budget marks faults failed but still
    /// completes the simulation (the driver layer surfaces the error).
    #[test]
    fn exchange_budget_exhaustion_counts_failed_faults() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(6, 0.0);
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), BLOCK);
            drive.load(tape).await;
            drive.set_fault_policy(
                crate::fault::TapeFaultPolicy::new(1)
                    .rates(0.0, 1.0)
                    .max_exchanges(4),
            );
            let blocks = drive.read(0, 6).await;
            assert_eq!(blocks.len(), 6, "data still delivered");
            let st = drive.stats();
            assert_eq!(st.hard_faults, 6);
            assert_eq!(st.failed_faults, 2);
            assert!(drive.has_failed());
        });
    }

    /// A spare unit clears the failed flag and draws no further faults;
    /// cumulative statistics survive the swap.
    #[test]
    fn replace_unit_installs_a_pristine_spare() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (tape, _) = tape_with_relation(12, 0.0);
            let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e6), BLOCK);
            drive.load(tape).await;
            drive.set_fault_policy(
                crate::fault::TapeFaultPolicy::new(1)
                    .rates(0.0, 1.0)
                    .max_exchanges(2),
            );
            drive.read(0, 4).await;
            assert!(drive.has_failed());
            let before = drive.stats();
            assert_eq!(before.hard_faults, 4);
            assert_eq!(before.failed_faults, 2);

            drive.replace_unit();
            assert!(!drive.has_failed());
            // The spare is fault-free: further reads stay clean and the
            // cumulative ledger is preserved, not reset.
            drive.read(4, 8).await;
            let after = drive.stats();
            assert_eq!(after.hard_faults, 4);
            assert_eq!(after.failed_faults, 2);
            assert!(!drive.has_failed());
            assert_eq!(after.blocks_read, 12);
        });
    }
}
