//! Tape cartridges: block-addressed sequential media.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use tapejoin_rel::{BlockRef, Relation};

/// One block as stored on tape: the data plus its compressibility (which
/// governs how fast the drive streams it).
#[derive(Clone, Debug)]
pub struct TapeBlock {
    /// The block contents.
    pub data: BlockRef,
    /// Compressibility of the byte stream this block belongs to.
    pub compressibility: f64,
}

/// A contiguous region on a tape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TapeExtent {
    /// First block position.
    pub start: u64,
    /// Length in blocks.
    pub len: u64,
}

impl TapeExtent {
    /// Position one past the last block.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }
}

struct MediaInner {
    label: String,
    capacity: u64,
    blocks: Vec<TapeBlock>,
}

/// A tape cartridge. Cheap to clone (shared handle); mutation goes through
/// a drive, which provides the timing.
#[derive(Clone)]
pub struct TapeMedia {
    // lint:allow(L9, tape-media state owned by one member's executor)
    inner: Rc<RefCell<MediaInner>>,
}

impl TapeMedia {
    /// A blank cartridge of the given capacity in blocks.
    pub fn blank(label: impl Into<String>, capacity_blocks: u64) -> Self {
        TapeMedia {
            inner: Rc::new(RefCell::new(MediaInner {
                label: label.into(),
                capacity: capacity_blocks,
                blocks: Vec::new(),
            })),
        }
    }

    /// Cartridge label.
    pub fn label(&self) -> String {
        self.inner.borrow().label.clone()
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.inner.borrow().capacity
    }

    /// Blocks currently recorded (the end-of-data position).
    pub fn end_of_data(&self) -> u64 {
        self.inner.borrow().blocks.len() as u64
    }

    /// Remaining scratch space in blocks (`T_R` / `T_S` accounting).
    pub fn free_blocks(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.capacity - inner.blocks.len() as u64
    }

    /// Record a relation at the end of data (a mastering step that happens
    /// before the join's clock starts — the paper assumes both relations
    /// are already on mounted tapes). Returns the extent written.
    pub fn load_relation(&self, relation: &Relation) -> TapeExtent {
        let mut inner = self.inner.borrow_mut();
        let start = inner.blocks.len() as u64;
        let len = relation.block_count();
        assert!(
            start + len <= inner.capacity,
            "tape '{}' overflow: {} + {len} > capacity {}",
            inner.label,
            start,
            inner.capacity
        );
        let c = relation.compressibility();
        inner
            .blocks
            .extend(relation.blocks().iter().map(|b| TapeBlock {
                data: Rc::clone(b),
                compressibility: c,
            }));
        TapeExtent { start, len }
    }

    /// Read the block at `pos` (drives call this; the drive provides the
    /// timing).
    pub(crate) fn read_at(&self, pos: u64) -> TapeBlock {
        let inner = self.inner.borrow();
        assert!(
            pos < inner.blocks.len() as u64,
            "tape '{}': read at {pos} beyond end of data {}",
            inner.label,
            inner.blocks.len()
        );
        inner.blocks[pos as usize].clone()
    }

    /// Append blocks at end of data; panics on capacity overflow.
    pub(crate) fn append(&self, blocks: &[TapeBlock]) -> TapeExtent {
        let mut inner = self.inner.borrow_mut();
        let start = inner.blocks.len() as u64;
        assert!(
            start + blocks.len() as u64 <= inner.capacity,
            "tape '{}' scratch overflow: {} + {} > capacity {}",
            inner.label,
            start,
            blocks.len(),
            inner.capacity
        );
        inner.blocks.extend_from_slice(blocks);
        TapeExtent {
            start,
            len: blocks.len() as u64,
        }
    }

    /// Flip the stored block at `pos` into one whose checksum no longer
    /// matches its contents — fault injection for testing integrity
    /// verification ([`crate::TapeDrive::set_verify_reads`]).
    pub fn corrupt(&self, pos: u64) {
        use tapejoin_rel::Block;
        let mut inner = self.inner.borrow_mut();
        let idx = pos as usize;
        assert!(idx < inner.blocks.len(), "corrupt beyond end of data");
        let old = &inner.blocks[idx];
        let forged = Block::forge(
            old.data.tuples().to_vec(),
            old.data.checksum() ^ 0xDEAD_BEEF,
        );
        inner.blocks[idx] = TapeBlock {
            data: std::rc::Rc::new(forged),
            compressibility: old.compressibility,
        };
    }

    /// Erase everything after `pos` (logical truncate; used to reclaim
    /// scratch space between experiment runs).
    pub fn truncate(&self, pos: u64) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            pos <= inner.blocks.len() as u64,
            "truncate beyond end of data"
        );
        inner.blocks.truncate(pos as usize);
    }
}

impl fmt::Debug for TapeMedia {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let inner = self.inner.borrow();
        write!(
            f,
            "TapeMedia['{}' {}/{} blocks]",
            inner.label,
            inner.blocks.len(),
            inner.capacity
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapejoin_rel::{RelationSpec, WorkloadBuilder};

    #[test]
    fn load_relation_records_extent_and_space() {
        let w = WorkloadBuilder::new(1)
            .r(RelationSpec::new("R", 10))
            .build();
        let tape = TapeMedia::blank("r-tape", 100);
        let ext = tape.load_relation(&w.r);
        assert_eq!(ext, TapeExtent { start: 0, len: 10 });
        assert_eq!(tape.end_of_data(), 10);
        assert_eq!(tape.free_blocks(), 90);
        assert_eq!(ext.end(), 10);
    }

    #[test]
    fn read_back_returns_same_blocks() {
        let w = WorkloadBuilder::new(2).r(RelationSpec::new("R", 4)).build();
        let tape = TapeMedia::blank("t", 10);
        let ext = tape.load_relation(&w.r);
        for i in 0..ext.len {
            let tb = tape.read_at(ext.start + i);
            assert_eq!(tb.data.checksum(), w.r.blocks()[i as usize].checksum());
            assert_eq!(
                tb.compressibility.to_bits(),
                w.r.compressibility().to_bits()
            );
        }
    }

    #[test]
    #[should_panic(expected = "overflow")]
    fn capacity_is_enforced() {
        let w = WorkloadBuilder::new(3).r(RelationSpec::new("R", 8)).build();
        let tape = TapeMedia::blank("small", 4);
        tape.load_relation(&w.r);
    }

    #[test]
    #[should_panic(expected = "beyond end of data")]
    fn reading_past_eod_panics() {
        let tape = TapeMedia::blank("t", 4);
        tape.read_at(0);
    }

    #[test]
    fn truncate_reclaims_space() {
        let w = WorkloadBuilder::new(4).r(RelationSpec::new("R", 6)).build();
        let tape = TapeMedia::blank("t", 6);
        tape.load_relation(&w.r);
        assert_eq!(tape.free_blocks(), 0);
        tape.truncate(2);
        assert_eq!(tape.free_blocks(), 4);
        assert_eq!(tape.end_of_data(), 2);
    }
}
