//! Deterministic fault injection for tape drives.
//!
//! Tape is the least reliable link in the paper's machine: media decays,
//! heads clog, and drives of the DLT-4000 era recovered read errors by
//! backing the head up and re-reading the block through ECC — each
//! attempt costing a repositioning cycle. Rarely, a block is beyond ECC
//! (or the drive itself degrades) and the operator's recourse is a media
//! exchange: the robot swaps in the duplicate cartridge and the read is
//! retried from the copy.
//!
//! [`TapeFaultPolicy`] parameterizes that model; a [`TapeFaultInjector`]
//! owns the per-drive random stream. Faults are *timing-only*: the block
//! contents delivered to the host are always correct (recovery succeeds
//! by construction, or is counted as failed), so a join's output is
//! unaffected — only its response time and the drive's fault counters
//! change. All draws happen inside the drive's FIFO service function, in
//! request order, so runs with the same seed are bit-for-bit identical.

use rand::{rngs::StdRng, Rng, SeedableRng};
use tapejoin_sim::Duration;

/// Fault model of one tape drive.
#[derive(Clone, Debug)]
pub struct TapeFaultPolicy {
    /// Seed of this drive's private fault stream.
    pub seed: u64,
    /// Per-block-read probability of a transient (ECC-recoverable) error.
    pub transient_rate: f64,
    /// Per-block-read probability of a hard fault requiring a media
    /// exchange. Disjoint from `transient_rate`; their sum must be ≤ 1.
    pub hard_rate: f64,
    /// Re-read attempts before a transient error escalates to a hard
    /// fault.
    pub max_retries: u32,
    /// Fixed cost of a media-exchange recovery (robot arm + unload +
    /// load of the duplicate cartridge).
    pub exchange_time: Duration,
    /// Media exchanges tolerated per drive; hard faults beyond this are
    /// counted as *failed* (the operator is out of duplicates).
    pub max_exchanges: u64,
}

impl TapeFaultPolicy {
    /// A policy with the given seed, zero fault rates, and defaults for
    /// the recovery knobs (4 re-reads, 70 s exchange ≈ 30 s robot + 40 s
    /// DLT load, effectively unlimited exchanges).
    pub fn new(seed: u64) -> Self {
        TapeFaultPolicy {
            seed,
            transient_rate: 0.0,
            hard_rate: 0.0,
            max_retries: 4,
            exchange_time: Duration::from_secs(70),
            max_exchanges: u64::MAX,
        }
    }

    /// Set the transient and hard fault rates (builder style).
    pub fn rates(mut self, transient: f64, hard: f64) -> Self {
        self.transient_rate = transient;
        self.hard_rate = hard;
        self
    }

    /// Set the re-read cap (builder style).
    pub fn max_retries(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one re-read attempt");
        self.max_retries = n;
        self
    }

    /// Set the media-exchange recovery cost (builder style).
    pub fn exchange_time(mut self, t: Duration) -> Self {
        self.exchange_time = t;
        self
    }

    /// Set the exchange budget (builder style).
    pub fn max_exchanges(mut self, n: u64) -> Self {
        self.max_exchanges = n;
        self
    }

    /// `true` when this policy can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.transient_rate > 0.0 || self.hard_rate > 0.0
    }
}

/// What the injector decided for one block read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum BlockFault {
    /// The read succeeded first try.
    Clean,
    /// A transient error, recovered after `retries` ECC re-reads.
    Transient {
        /// Re-read attempts performed (≥ 1).
        retries: u32,
    },
    /// A hard fault (direct, or a transient that exhausted its re-read
    /// budget — `retries` counts the wasted re-reads). Recovered by a
    /// media exchange.
    Hard {
        /// Wasted re-read attempts before escalating (0 for direct).
        retries: u32,
    },
}

/// Per-drive fault stream: policy plus its private deterministic RNG.
#[derive(Clone, Debug)]
pub(crate) struct TapeFaultInjector {
    rng: StdRng,
    pub(crate) policy: TapeFaultPolicy,
}

impl TapeFaultInjector {
    pub(crate) fn new(policy: TapeFaultPolicy) -> Self {
        assert!(
            policy.transient_rate >= 0.0
                && policy.hard_rate >= 0.0
                && policy.transient_rate + policy.hard_rate <= 1.0,
            "fault rates must be probabilities with sum <= 1: transient {} hard {}",
            policy.transient_rate,
            policy.hard_rate,
        );
        TapeFaultInjector {
            rng: StdRng::seed_from_u64(policy.seed),
            policy,
        }
    }

    /// Draw the fault outcome for one block read. One uniform draw
    /// partitions [0, 1) into hard / transient / clean; a transient then
    /// draws per re-read until a re-read succeeds or the budget is spent.
    pub(crate) fn on_block_read(&mut self) -> BlockFault {
        let p = self.policy.clone();
        if !p.is_active() {
            return BlockFault::Clean;
        }
        let u: f64 = self.rng.gen();
        if u < p.hard_rate {
            return BlockFault::Hard { retries: 0 };
        }
        if u < p.hard_rate + p.transient_rate {
            let mut retries = 0u32;
            loop {
                retries += 1;
                if self.rng.gen::<f64>() >= p.transient_rate {
                    return BlockFault::Transient { retries };
                }
                if retries >= p.max_retries {
                    return BlockFault::Hard { retries };
                }
            }
        }
        BlockFault::Clean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rates_never_fault() {
        let mut inj = TapeFaultInjector::new(TapeFaultPolicy::new(1));
        for _ in 0..1000 {
            assert_eq!(inj.on_block_read(), BlockFault::Clean);
        }
    }

    #[test]
    fn same_seed_same_fault_schedule() {
        let policy = TapeFaultPolicy::new(42).rates(0.3, 0.05);
        let mut a = TapeFaultInjector::new(policy.clone());
        let mut b = TapeFaultInjector::new(policy);
        for _ in 0..1000 {
            assert_eq!(a.on_block_read(), b.on_block_read());
        }
    }

    #[test]
    fn certain_transient_escalates_at_the_retry_cap() {
        // transient_rate = 1.0: every read faults and every re-read
        // fails, so each block deterministically escalates after
        // max_retries wasted re-reads.
        let policy = TapeFaultPolicy::new(7).rates(1.0, 0.0).max_retries(3);
        let mut inj = TapeFaultInjector::new(policy);
        for _ in 0..100 {
            assert_eq!(inj.on_block_read(), BlockFault::Hard { retries: 3 });
        }
    }

    #[test]
    fn certain_hard_rate_always_exchanges() {
        let policy = TapeFaultPolicy::new(7).rates(0.0, 1.0);
        let mut inj = TapeFaultInjector::new(policy);
        for _ in 0..100 {
            assert_eq!(inj.on_block_read(), BlockFault::Hard { retries: 0 });
        }
    }

    #[test]
    fn rates_partition_roughly_as_configured() {
        let policy = TapeFaultPolicy::new(99).rates(0.2, 0.01);
        let mut inj = TapeFaultInjector::new(policy);
        let (mut clean, mut transient, mut hard) = (0u32, 0u32, 0u32);
        for _ in 0..10_000 {
            match inj.on_block_read() {
                BlockFault::Clean => clean += 1,
                BlockFault::Transient { .. } => transient += 1,
                BlockFault::Hard { .. } => hard += 1,
            }
        }
        assert!((7_500..8_300).contains(&clean), "clean {clean}");
        assert!((1_700..2_300).contains(&transient), "transient {transient}");
        assert!(hard < 300, "hard {hard}");
    }

    #[test]
    #[should_panic(expected = "sum <= 1")]
    fn rejects_rates_summing_past_one() {
        TapeFaultInjector::new(TapeFaultPolicy::new(0).rates(0.7, 0.5));
    }
}
