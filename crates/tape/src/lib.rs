//! `tapejoin-tape` — magnetic tape media, drives and library robot.
//!
//! This is the synthesized tertiary-storage substrate the paper's join
//! methods run against (the paper used two physical Quantum DLT-4000
//! drives; see DESIGN.md §1 for the substitution argument). The model
//! captures what the algorithms exercise:
//!
//! * **sequential streaming** at a sustained rate that depends on the data
//!   compressibility (the drives compress on the fly, so 25%-compressible
//!   data streams 1/0.75 ≈ 1.33× faster than incompressible data — this is
//!   how Experiment 3 varies the tape/disk speed ratio);
//! * **repositioning** penalties whenever an access is not at the current
//!   head position, and optional stop/start penalties when streaming
//!   breaks (the paper assumes drive buffering hides them; both are
//!   modelled and default to the paper's assumptions);
//! * **appends** to scratch space (`T_R`/`T_S` in Table 2), with capacity
//!   accounting — this is what CTT-GH/TT-GH use to store hashed copies;
//! * **serpentine rewind** (orders of magnitude faster than reading, per
//!   the paper: "a 5 GB tape file might take an hour to read but only 10
//!   seconds to rewind");
//! * a **library robot** with ~30 s media exchanges;
//! * **deterministic fault injection** ([`TapeFaultPolicy`]): seeded
//!   transient read errors recovered by costed ECC re-read cycles, and
//!   rare hard faults recovered by a media exchange — timing-only, so
//!   join output is never corrupted and same-seed runs are identical.
//!
//! All operations are async and charge virtual time through a FIFO
//! [`tapejoin_sim::Server`] per drive, so two drives overlap freely while
//! requests on one drive serialize — exactly the system model of §3.

#![warn(missing_docs)]

mod drive;
mod error;
mod fault;
mod library;
mod media;
mod model;
mod multivolume;

pub use drive::{TapeDrive, TapeStats};
pub use error::TapeError;
pub use fault::TapeFaultPolicy;
pub use library::{LibraryError, TapeLibrary};
pub use media::{TapeBlock, TapeExtent, TapeMedia};
pub use model::TapeDriveModel;
pub use multivolume::{MultiVolume, Segment};
