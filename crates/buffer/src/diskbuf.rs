//! Double-buffered disk space for staging `S` chunks (§4).
//!
//! The producer (tape reader / hash process) writes blocks of iteration
//! *i+1* while the consumer (join process) reads and frees blocks of
//! iteration *i*. Two placement disciplines:
//!
//! * [`DiskBufKind::Interleaved`] — one slot pool covering the whole
//!   buffer; a slot freed by the consumer is immediately reusable by the
//!   producer regardless of iteration. Chunk size `|S_i|` = full capacity
//!   and utilization stays near 100%. This needs the fine-grained
//!   placement control the paper says "an ordinary RAID" cannot give.
//! * [`DiskBufKind::Split`] — the naive scheme: the buffer is halved and
//!   iterations alternate halves. Chunk size is halved (doubling the
//!   number of `R` scans) and average utilization is ~50%. Kept for the
//!   ablation experiment.
//!
//! Back-pressure is FIFO through the slot semaphores, so the producer
//! gradually refills exactly as space drains — the shark-tooth pattern of
//! the paper's Figure 4 falls out of the occupancy traces recorded here.
//!
//! lint:allow-file(L9, per-member staging buffer; Rc handles are cloned only into tasks on the owning member's executor)

use tapejoin_disk::{DiskAddr, DiskArray, SpaceManager};
use tapejoin_obs::{MetricKey, Recorder};
use tapejoin_rel::BlockRef;
use tapejoin_sim::sync::Semaphore;
use tapejoin_sim::Trace;

use std::cell::RefCell;
use std::rc::Rc;

/// Placement discipline for the disk buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskBufKind {
    /// Single shared slot pool; immediate reuse (the paper's technique).
    Interleaved,
    /// Two fixed halves used by alternating iterations (the strawman).
    Split,
}

/// A split half's in-progress frame reservation: `(iteration, permits
/// still unclaimed)`.
type HalfReserve = Option<(u64, u64)>;

/// A block staged in the buffer: where it lives and which iteration wrote
/// it.
#[derive(Clone, Copy, Debug)]
pub struct BufSlot {
    /// Disk address holding the block.
    pub addr: DiskAddr,
    /// Iteration (frame) number that produced the block.
    pub iter: u64,
}

/// Occupancy traces for Figure 4: blocks held by even iterations, by odd
/// iterations, and in total, over virtual time.
#[derive(Clone)]
pub struct UtilizationProbe {
    /// Blocks held by even-numbered iterations.
    pub even: Trace,
    /// Blocks held by odd-numbered iterations.
    pub odd: Trace,
    /// Total blocks held.
    pub total: Trace,
    /// The buffer's capacity in blocks (the 100% line).
    pub capacity: u64,
}

struct Occupancy {
    even: u64,
    odd: u64,
    probe: Option<UtilizationProbe>,
    recorder: Recorder,
}

impl Occupancy {
    fn apply(&mut self, iter: u64, delta: i64) {
        let slot = if iter % 2 == 0 {
            &mut self.even
        } else {
            &mut self.odd
        };
        *slot = slot
            .checked_add_signed(delta)
            // lint:allow(L3, occupancy underflow is a buffer-manager accounting bug, not a runtime condition)
            .expect("occupancy accounting underflow");
        if let Some(p) = &self.probe {
            // `try_record` rather than `record`: a fault-retry rewind can
            // replay a free/stage pair whose probe sample lands at a time
            // already passed by a later sample from the concurrent
            // producer; the stale sample is dropped rather than panicking.
            let at = tapejoin_sim::now();
            let _ = p.even.try_record(at, self.even as f64);
            let _ = p.odd.try_record(at, self.odd as f64);
            let _ = p.total.try_record(at, (self.even + self.odd) as f64);
        }
        if let Some(metrics) = self.recorder.metrics() {
            metrics.gauge_set(
                MetricKey::new("diskbuf.occupancy_blocks"),
                (self.even + self.odd) as f64,
            );
            if delta > 0 {
                metrics.counter_add(MetricKey::new("diskbuf.staged_blocks"), delta as u64);
            } else {
                metrics.counter_add(MetricKey::new("diskbuf.freed_blocks"), (-delta) as u64);
            }
        }
    }
}

/// Double-buffered disk staging area. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct DiskBuffer {
    kind: DiskBufKind,
    capacity: u64,
    /// One semaphore (interleaved) or two (split halves).
    sems: Rc<Vec<Semaphore>>,
    /// Split discipline only: the whole-half reservation of the frame
    /// currently being written into each half (`(iter, permits left)`).
    reserve: Rc<RefCell<[HalfReserve; 2]>>,
    array: DiskArray,
    space: SpaceManager,
    occupancy: Rc<RefCell<Occupancy>>,
}

/// Alias kept for discoverability: the paper's technique.
pub type InterleavedDiskBuffer = DiskBuffer;
/// Alias kept for discoverability: the strawman variant.
pub type SplitDiskBuffer = DiskBuffer;

impl DiskBuffer {
    /// Create a buffer of `capacity` blocks carved from the join's disk
    /// space manager (`space`). The capacity is *reserved* in the quota
    /// only as blocks are actually staged.
    pub fn new(kind: DiskBufKind, capacity: u64, array: DiskArray, space: SpaceManager) -> Self {
        assert!(capacity > 0, "disk buffer needs at least one block");
        let sems = match kind {
            DiskBufKind::Interleaved => vec![Semaphore::new(capacity)],
            DiskBufKind::Split => {
                assert!(capacity >= 2, "split buffer needs at least two blocks");
                vec![
                    Semaphore::new(capacity / 2),
                    Semaphore::new(capacity - capacity / 2),
                ]
            }
        };
        DiskBuffer {
            kind,
            capacity,
            sems: Rc::new(sems),
            reserve: Rc::new(RefCell::new([None, None])),
            array,
            space,
            occupancy: Rc::new(RefCell::new(Occupancy {
                even: 0,
                odd: 0,
                probe: None,
                recorder: Recorder::disabled(),
            })),
        }
    }

    /// Attach an observability recorder: staged/freed block counters and
    /// an occupancy gauge are maintained in its metrics registry. A
    /// disabled recorder is a no-op.
    pub fn with_recorder(self, rec: Recorder) -> Self {
        self.occupancy.borrow_mut().recorder = rec;
        self
    }

    /// Enable occupancy tracing (Figure 4) and return the probe.
    pub fn with_probe(self) -> (Self, UtilizationProbe) {
        let probe = UtilizationProbe {
            even: Trace::new("diskbuf-even"),
            odd: Trace::new("diskbuf-odd"),
            total: Trace::new("diskbuf-total"),
            capacity: self.capacity,
        };
        self.occupancy.borrow_mut().probe = Some(probe.clone());
        (self.clone(), probe)
    }

    /// Buffer kind.
    pub fn kind(&self) -> DiskBufKind {
        self.kind
    }

    /// Total buffer capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The chunk size `|S_i|` this buffer supports per iteration: full
    /// capacity when interleaved, half when split.
    pub fn slots_per_frame(&self) -> u64 {
        match self.kind {
            DiskBufKind::Interleaved => self.capacity,
            DiskBufKind::Split => self.capacity / 2,
        }
    }

    fn sem_for(&self, iter: u64) -> &Semaphore {
        &self.sems[(iter as usize) % self.sems.len()]
    }

    /// Stage `blocks` for iteration `iter`: waits FIFO for slots, writes
    /// them to disk as one request, returns the slot descriptors.
    ///
    /// Interleaved discipline: slots are acquired block-by-block, so the
    /// space freed as the previous frame drains is reused immediately.
    /// Split discipline: the frame's *entire half* is reserved before its
    /// first write — the classic handoff, which is exactly what caps the
    /// buffer's average utilization at ~50%.
    pub async fn write_batch(&self, iter: u64, blocks: &[BlockRef]) -> Vec<BufSlot> {
        assert!(
            blocks.len() as u64 <= self.slots_per_frame(),
            "batch of {} exceeds frame capacity {}",
            blocks.len(),
            self.slots_per_frame()
        );
        match self.kind {
            DiskBufKind::Interleaved => {
                self.sem_for(iter)
                    .acquire(blocks.len() as u64)
                    .await
                    .forget();
            }
            DiskBufKind::Split => {
                let parity = (iter % 2) as usize;
                let needs_reservation = {
                    let reserve = self.reserve.borrow();
                    !matches!(reserve[parity], Some((i, _)) if i == iter)
                };
                if needs_reservation {
                    // Return any leftover reservation of the previous
                    // frame on this half, then claim the whole half
                    // (waits until it is completely free).
                    let leftover = {
                        let mut reserve = self.reserve.borrow_mut();
                        reserve[parity].take().map(|(_, left)| left)
                    };
                    if let Some(left) = leftover {
                        self.sems[parity].add_permits(left);
                    }
                    let frame = self.slots_per_frame();
                    self.sems[parity].acquire(frame).await.forget();
                    self.reserve.borrow_mut()[parity] = Some((iter, frame));
                }
                let mut reserve = self.reserve.borrow_mut();
                // lint:allow(L3, the reservation was inserted two lines above in the same borrow)
                let (_, left) = reserve[parity].as_mut().expect("reservation just made");
                *left = left
                    .checked_sub(blocks.len() as u64)
                    // lint:allow(L3, frame count is bounded by the reserve split fixed at admission)
                    .expect("frame exceeded its reserved half");
            }
        }
        let addrs = self
            .space
            .allocate(blocks.len() as u64)
            // lint:allow(L3, slot quota was proven by the method's feasibility check before the run)
            .expect("disk buffer slots exceeded the space quota — capacity misconfigured");
        self.occupancy.borrow_mut().apply(iter, blocks.len() as i64);
        self.array.write(&addrs, blocks).await;
        addrs
            .into_iter()
            .map(|addr| BufSlot { addr, iter })
            .collect()
    }

    /// Read staged blocks (one request) without freeing them (used when a
    /// frame must be re-scanned, e.g. R-bucket overflow resolution).
    pub async fn read(&self, slots: &[BufSlot]) -> Vec<BlockRef> {
        let addrs: Vec<DiskAddr> = slots.iter().map(|s| s.addr).collect();
        self.array.read(&addrs).await
    }

    /// Read staged blocks (one request) and free their slots for reuse.
    pub async fn read_and_free(&self, slots: &[BufSlot]) -> Vec<BlockRef> {
        let blocks = self.read(slots).await;
        self.free(slots);
        blocks
    }

    /// Free slots without reading (e.g. discarding a frame).
    pub fn free(&self, slots: &[BufSlot]) {
        let addrs: Vec<DiskAddr> = slots.iter().map(|s| s.addr).collect();
        self.space.release(&addrs);
        let mut occ = self.occupancy.borrow_mut();
        // Group releases by iteration parity so each half's semaphore gets
        // its own permits back under the split discipline.
        let mut per_parity = [0u64; 2];
        for s in slots {
            per_parity[(s.iter % 2) as usize] += 1;
            occ.apply(s.iter, -1);
        }
        drop(occ);
        match self.kind {
            DiskBufKind::Interleaved => {
                self.sems[0].add_permits(per_parity[0] + per_parity[1]);
            }
            DiskBufKind::Split => {
                // Slots of the frame currently holding a half's
                // reservation replenish that reservation (tail-merge
                // rewrites recycle within the frame); anything else goes
                // back to the half's semaphore.
                let mut reserve = self.reserve.borrow_mut();
                for s in slots {
                    let parity = (s.iter % 2) as usize;
                    match reserve[parity].as_mut() {
                        Some((iter, left)) if *iter == s.iter => *left += 1,
                        _ => self.sems[parity].add_permits(1),
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tapejoin_disk::{ArrayMode, DiskModel};
    use tapejoin_rel::{Block, Tuple};
    use tapejoin_sim::{now, sleep, spawn, Duration, Simulation};

    const BLOCK: u64 = 1 << 16;

    fn setup(kind: DiskBufKind, capacity: u64) -> DiskBuffer {
        let array = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::Aggregate);
        let space = SpaceManager::new(2, capacity);
        DiskBuffer::new(kind, capacity, array, space)
    }

    fn blks(n: u64, tag: u64) -> Vec<BlockRef> {
        (0..n)
            .map(|i| Rc::new(Block::new(vec![Tuple::new(tag * 1000 + i, i)])) as BlockRef)
            .collect()
    }

    #[test]
    fn roundtrip_preserves_data() {
        let mut sim = Simulation::new();
        sim.run(async {
            let buf = setup(DiskBufKind::Interleaved, 8);
            let data = blks(8, 1);
            let slots = buf.write_batch(0, &data).await;
            let back = buf.read_and_free(&slots).await;
            for (a, b) in data.iter().zip(&back) {
                assert_eq!(a.checksum(), b.checksum());
            }
        });
    }

    #[test]
    fn interleaved_frame_size_is_full_capacity() {
        let buf = setup(DiskBufKind::Interleaved, 10);
        assert_eq!(buf.slots_per_frame(), 10);
        let buf = setup(DiskBufKind::Split, 10);
        assert_eq!(buf.slots_per_frame(), 5);
    }

    #[test]
    fn interleaved_reuses_space_as_it_drains() {
        let mut sim = Simulation::new();
        sim.run(async {
            let buf = setup(DiskBufKind::Interleaved, 4);
            let slots0 = buf.write_batch(0, &blks(4, 0)).await;
            // Full. Writing iteration 1 must wait for frees.
            let buf2 = buf.clone();
            let writer = spawn(async move {
                let _ = buf2.write_batch(1, &blks(2, 1)).await;
                now()
            });
            sleep(Duration::from_secs(5)).await;
            assert!(!writer.is_finished());
            // Free two blocks of iteration 0: exactly enough.
            buf.read_and_free(&slots0[..2]).await;
            let t = writer.join().await;
            assert!(t.as_secs_f64() >= 5.0);
            buf.read_and_free(&slots0[2..]).await;
        });
    }

    #[test]
    fn split_halves_do_not_share_space() {
        let mut sim = Simulation::new();
        sim.run(async {
            let buf = setup(DiskBufKind::Split, 4);
            // Fill iteration 0's half (2 blocks).
            let slots0 = buf.write_batch(0, &blks(2, 0)).await;
            // Iteration 1 has its own half: no waiting.
            let slots1 = buf.write_batch(1, &blks(2, 1)).await;
            // Iteration 2 shares iteration 0's half: must wait.
            let buf2 = buf.clone();
            let writer = spawn(async move {
                let _ = buf2.write_batch(2, &blks(2, 2)).await;
            });
            sleep(Duration::from_secs(1)).await;
            assert!(!writer.is_finished());
            buf.read_and_free(&slots0).await;
            writer.join().await;
            buf.read_and_free(&slots1).await;
        });
    }

    #[test]
    fn probe_records_shark_tooth_occupancy() {
        let mut sim = Simulation::new();
        sim.run(async {
            let (buf, probe) = setup(DiskBufKind::Interleaved, 4).with_probe();
            let s0 = buf.write_batch(0, &blks(4, 0)).await;
            buf.read_and_free(&s0[..2]).await;
            let s1 = buf.write_batch(1, &blks(2, 1)).await;
            buf.read_and_free(&s0[2..]).await;
            buf.read_and_free(&s1).await;
            assert_eq!(probe.total.max_value().to_bits(), 4.0f64.to_bits());
            assert_eq!(probe.even.max_value().to_bits(), 4.0f64.to_bits());
            assert_eq!(probe.odd.max_value().to_bits(), 2.0f64.to_bits());
            // Ends empty.
            assert_eq!(
                probe.total.points().last().unwrap().value.to_bits(),
                0.0f64.to_bits()
            );
        });
    }

    #[test]
    #[should_panic(expected = "exceeds frame capacity")]
    fn oversized_batch_is_rejected() {
        let mut sim = Simulation::new();
        sim.run(async {
            let buf = setup(DiskBufKind::Interleaved, 2);
            let _ = buf.write_batch(0, &blks(3, 0)).await;
        });
    }
}
