//! `tapejoin-buffer` — the buffering techniques of the paper's Section 4.
//!
//! Three pieces:
//!
//! * [`MemoryPool`] — hard enforcement of the `M`-block main-memory budget
//!   with RAII grants and peak tracking. A join method that exceeds its
//!   Table 2 memory requirement fails loudly instead of silently using
//!   more memory than the configuration allows.
//! * [`CircularBuffer`] — a bounded in-memory block queue ("a simple
//!   circular buffer implementation is sufficient" for main-memory
//!   double-buffering): one physical buffer shared by two logical buffers,
//!   with space released by the reader immediately reused by the writer.
//! * [`InterleavedDiskBuffer`] — the disk-resident analogue. Writes for
//!   iteration *i+1* reuse, slot by slot, the space released as iteration
//!   *i* is consumed; buffer utilization stays at ~100% and the chunk size
//!   `|S_i|` equals the full buffer capacity. [`SplitDiskBuffer`] is the
//!   naive halve-the-buffer alternative the paper argues against (half the
//!   chunk size, twice the iterations, 50% average utilization); it exists
//!   so the ablation benchmark can measure exactly that claim.

#![warn(missing_docs)]

mod circular;
mod diskbuf;
mod mempool;

pub use circular::{CircularBuffer, CircularReader, CircularWriter};
pub use diskbuf::{
    BufSlot, DiskBufKind, DiskBuffer, InterleavedDiskBuffer, SplitDiskBuffer, UtilizationProbe,
};
pub use mempool::{MemGrant, MemoryExhausted, MemoryPool};
