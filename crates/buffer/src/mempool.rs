//! Main-memory budget enforcement (`M` blocks).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

struct PoolInner {
    quota: u64,
    in_use: u64,
    peak: u64,
}

/// Error: a grant would exceed the `M`-block memory budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemoryExhausted {
    /// Blocks requested.
    pub requested: u64,
    /// Blocks free under the quota.
    pub free: u64,
}

impl fmt::Display for MemoryExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "memory exhausted: requested {} blocks, {} free under quota",
            self.requested, self.free
        )
    }
}

impl std::error::Error for MemoryExhausted {}

/// The join's main-memory pool, measured in blocks. Cheap to clone
/// (shared handle).
///
/// # Examples
///
/// ```
/// use tapejoin_buffer::MemoryPool;
///
/// let pool = MemoryPool::new(16); // M = 16 blocks
/// let grant = pool.grant(10).unwrap();
/// assert!(pool.grant(10).is_err()); // over budget
/// drop(grant);
/// assert_eq!(pool.free(), 16);
/// ```
#[derive(Clone)]
pub struct MemoryPool {
    // lint:allow(L9, pool handle cloned across tasks of one executor only)
    inner: Rc<RefCell<PoolInner>>,
}

impl MemoryPool {
    /// A pool with an `M`-block quota.
    pub fn new(quota_blocks: u64) -> Self {
        MemoryPool {
            inner: Rc::new(RefCell::new(PoolInner {
                quota: quota_blocks,
                in_use: 0,
                peak: 0,
            })),
        }
    }

    /// Total quota.
    pub fn quota(&self) -> u64 {
        self.inner.borrow().quota
    }

    /// Blocks currently granted.
    pub fn in_use(&self) -> u64 {
        self.inner.borrow().in_use
    }

    /// Blocks free under the quota.
    pub fn free(&self) -> u64 {
        let p = self.inner.borrow();
        p.quota - p.in_use
    }

    /// High-water mark of granted blocks (validates Table 2).
    pub fn peak(&self) -> u64 {
        self.inner.borrow().peak
    }

    /// Take `blocks` out of the budget for the lifetime of the grant.
    pub fn grant(&self, blocks: u64) -> Result<MemGrant, MemoryExhausted> {
        let mut p = self.inner.borrow_mut();
        if p.in_use + blocks > p.quota {
            return Err(MemoryExhausted {
                requested: blocks,
                free: p.quota - p.in_use,
            });
        }
        p.in_use += blocks;
        p.peak = p.peak.max(p.in_use);
        Ok(MemGrant {
            pool: self.clone(),
            blocks,
        })
    }
}

/// RAII memory grant; returns its blocks to the pool on drop.
pub struct MemGrant {
    pool: MemoryPool,
    blocks: u64,
}

impl fmt::Debug for MemGrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "MemGrant({} blocks)", self.blocks)
    }
}

impl MemGrant {
    /// Blocks held by this grant.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Shrink the grant, returning `blocks` to the pool immediately.
    pub fn shrink(&mut self, blocks: u64) {
        assert!(blocks <= self.blocks, "shrinking below zero");
        self.blocks -= blocks;
        let mut p = self.pool.inner.borrow_mut();
        p.in_use -= blocks;
    }
}

impl Drop for MemGrant {
    fn drop(&mut self) {
        let mut p = self.pool.inner.borrow_mut();
        p.in_use -= self.blocks;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grants_respect_quota() {
        let pool = MemoryPool::new(10);
        let g1 = pool.grant(6).unwrap();
        assert_eq!(pool.free(), 4);
        let err = pool.grant(5).unwrap_err();
        assert_eq!(
            err,
            MemoryExhausted {
                requested: 5,
                free: 4
            }
        );
        drop(g1);
        assert!(pool.grant(10).is_ok());
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let pool = MemoryPool::new(10);
        {
            let _a = pool.grant(4).unwrap();
            let _b = pool.grant(5).unwrap();
        }
        let _c = pool.grant(2).unwrap();
        assert_eq!(pool.peak(), 9);
        assert_eq!(pool.in_use(), 2);
    }

    #[test]
    fn shrink_releases_partially() {
        let pool = MemoryPool::new(10);
        let mut g = pool.grant(8).unwrap();
        g.shrink(3);
        assert_eq!(pool.in_use(), 5);
        assert_eq!(g.blocks(), 5);
        drop(g);
        assert_eq!(pool.in_use(), 0);
    }

    #[test]
    fn zero_grant_always_succeeds() {
        let pool = MemoryPool::new(0);
        assert!(pool.grant(0).is_ok());
        assert!(pool.grant(1).is_err());
    }
}
