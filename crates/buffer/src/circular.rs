//! In-memory circular block buffer.
//!
//! "For main memory buffers, a simple circular buffer implementation is
//! sufficient" (§4): one physical buffer of `capacity` blocks shared by
//! the reader and writer; a slot freed by the reader is immediately
//! reusable by the writer, so utilization can stay at 100%.
//!
//! Memory for the buffer is charged against the join's [`MemoryPool`]
//! for the buffer's lifetime.

use tapejoin_rel::BlockRef;
use tapejoin_sim::sync::{channel, Receiver, Sender};

use crate::mempool::{MemGrant, MemoryExhausted, MemoryPool};

/// Bounded in-memory block queue backed by an `M`-budget grant.
pub struct CircularBuffer {
    tx: Sender<BlockRef>,
    rx: Receiver<BlockRef>,
    capacity: u64,
    _grant: MemGrant,
}

impl CircularBuffer {
    /// Create a buffer of `capacity` blocks, charging the pool.
    pub fn new(pool: &MemoryPool, capacity: u64) -> Result<Self, MemoryExhausted> {
        assert!(capacity > 0, "circular buffer needs at least one slot");
        let grant = pool.grant(capacity)?;
        let (tx, rx) = channel(capacity as usize);
        Ok(CircularBuffer {
            tx,
            rx,
            capacity,
            _grant: grant,
        })
    }

    /// Capacity in blocks.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Blocks currently buffered.
    pub fn occupancy(&self) -> u64 {
        self.rx.len() as u64
    }

    /// Split into producer and consumer halves.
    pub fn split(self) -> (CircularWriter, CircularReader) {
        (
            CircularWriter { tx: self.tx },
            CircularReader {
                rx: self.rx,
                _grant: self._grant,
            },
        )
    }
}

/// Producer half of a [`CircularBuffer`].
pub struct CircularWriter {
    tx: Sender<BlockRef>,
}

impl CircularWriter {
    /// Append a block, waiting for a free slot. Returns `false` if the
    /// reader is gone.
    pub async fn put(&self, block: BlockRef) -> bool {
        self.tx.send(block).await.is_ok()
    }
}

/// Consumer half of a [`CircularBuffer`]; holds the memory grant.
pub struct CircularReader {
    rx: Receiver<BlockRef>,
    _grant: MemGrant,
}

impl CircularReader {
    /// Take the oldest block; `None` once the writer is dropped and the
    /// buffer drained.
    pub async fn take(&mut self) -> Option<BlockRef> {
        self.rx.recv().await
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::rc::Rc;
    use tapejoin_rel::{Block, Tuple};
    use tapejoin_sim::{now, sleep, spawn, Duration, Simulation};

    fn blk(i: u64) -> BlockRef {
        Rc::new(Block::new(vec![Tuple::new(i, i)]))
    }

    #[test]
    fn charges_and_releases_memory() {
        let mut sim = Simulation::new();
        sim.run(async {
            let pool = MemoryPool::new(8);
            let buf = CircularBuffer::new(&pool, 5).unwrap();
            assert_eq!(pool.in_use(), 5);
            assert!(CircularBuffer::new(&pool, 4).is_err());
            drop(buf);
            assert_eq!(pool.in_use(), 0);
        });
    }

    #[test]
    fn producer_blocks_when_full_slot_reuse_is_immediate() {
        let mut sim = Simulation::new();
        sim.run(async {
            let pool = MemoryPool::new(2);
            let (w, mut r) = CircularBuffer::new(&pool, 2).unwrap().split();
            let producer = spawn(async move {
                for i in 0..4 {
                    assert!(w.put(blk(i)).await);
                }
                now()
            });
            sleep(Duration::from_secs(1)).await;
            // Two blocks buffered; producer parked on the third.
            assert!(!producer.is_finished());
            let _ = r.take().await; // free one slot -> producer advances
            let _ = r.take().await;
            let _ = r.take().await;
            let _ = r.take().await;
            let done_at = producer.join().await;
            assert_eq!(
                done_at,
                tapejoin_sim::SimTime::ZERO + tapejoin_sim::Duration::from_secs(1)
            );
        });
    }

    #[test]
    fn fifo_order_and_termination() {
        let mut sim = Simulation::new();
        sim.run(async {
            let pool = MemoryPool::new(4);
            let (w, mut r) = CircularBuffer::new(&pool, 4).unwrap().split();
            spawn(async move {
                for i in 0..10 {
                    w.put(blk(i)).await;
                }
            });
            let mut keys = Vec::new();
            while let Some(b) = r.take().await {
                keys.push(b.tuples()[0].key);
            }
            assert_eq!(keys, (0..10).collect::<Vec<_>>());
        });
    }
}
