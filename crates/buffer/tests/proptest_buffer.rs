//! Property tests for the buffering layer: block conservation through
//! the circular buffer and the disk double buffers under arbitrary
//! producer/consumer schedules.

use proptest::prelude::*;
use std::rc::Rc;
use tapejoin_buffer::{BufSlot, CircularBuffer, DiskBufKind, DiskBuffer, MemoryPool};
use tapejoin_disk::{ArrayMode, DiskArray, DiskModel, SpaceManager};
use tapejoin_rel::{Block, BlockRef, Tuple};
use tapejoin_sim::{sleep, spawn, Duration, Simulation};

fn blk(i: u64) -> BlockRef {
    Rc::new(Block::new(vec![Tuple::new(i, i)]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every block pushed through the circular buffer comes out exactly
    /// once, in order, for arbitrary capacities, counts and pacing.
    #[test]
    fn circular_buffer_conserves_blocks(
        capacity in 1u64..12,
        count in 0u64..80,
        producer_pause in 0u64..5,
        consumer_pause in 0u64..5,
    ) {
        let mut sim = Simulation::new();
        let keys = sim.run(async move {
            let pool = MemoryPool::new(capacity);
            let (w, mut r) = CircularBuffer::new(&pool, capacity).unwrap().split();
            spawn(async move {
                for i in 0..count {
                    if producer_pause > 0 {
                        sleep(Duration::from_nanos(producer_pause)).await;
                    }
                    assert!(w.put(blk(i)).await);
                }
            });
            let mut keys = Vec::new();
            while let Some(b) = r.take().await {
                if consumer_pause > 0 {
                    sleep(Duration::from_nanos(consumer_pause)).await;
                }
                keys.push(b.tuples()[0].key);
            }
            keys
        });
        prop_assert_eq!(keys, (0..count).collect::<Vec<_>>());
    }

    /// The disk buffer conserves blocks and never exceeds its capacity,
    /// under either discipline, for arbitrary frame sizes.
    #[test]
    fn disk_buffer_conserves_blocks(
        kind in prop_oneof![Just(DiskBufKind::Interleaved), Just(DiskBufKind::Split)],
        capacity in 2u64..16,
        frames in proptest::collection::vec(1u64..8, 1..8),
    ) {
        let mut sim = Simulation::new();
        let frames2 = frames.clone();
        let (seen, peak) = sim.run(async move {
            let array = DiskArray::new(DiskModel::ideal(1e6), 2, 1 << 16, ArrayMode::Aggregate);
            let space = SpaceManager::new(2, capacity);
            let (buf, probe) = DiskBuffer::new(kind, capacity, array, space).with_probe();
            let spf = buf.slots_per_frame();
            let buf2 = buf.clone();
            let (tx, mut rx) = tapejoin_sim::sync::channel::<Vec<BufSlot>>(1);
            spawn(async move {
                let mut key = 0u64;
                for (iter, &n) in frames2.iter().enumerate() {
                    let n = n.min(spf);
                    let blocks: Vec<BlockRef> = (0..n).map(|_| { key += 1; blk(key) }).collect();
                    let slots = buf2.write_batch(iter as u64, &blocks).await;
                    if tx.send(slots).await.is_err() {
                        return;
                    }
                }
            });
            let mut seen = Vec::new();
            while let Some(slots) = rx.recv().await {
                let blocks = buf.read_and_free(&slots).await;
                for b in blocks {
                    seen.push(b.tuples()[0].key);
                }
            }
            (seen, probe.total.max_value())
        });
        // All staged blocks came back exactly once, in order.
        let expected: Vec<u64> = (1..=seen.len() as u64).collect();
        prop_assert_eq!(seen, expected);
        prop_assert!(peak <= capacity as f64 + 0.5);
    }

    /// Memory pool grants never exceed the quota and always restore it.
    #[test]
    fn memory_pool_conserves(quota in 1u64..50, requests in proptest::collection::vec(1u64..10, 1..20)) {
        let pool = MemoryPool::new(quota);
        let mut grants = Vec::new();
        for r in requests {
            match pool.grant(r) {
                Ok(g) => grants.push(g),
                Err(e) => {
                    prop_assert_eq!(e.free, pool.free());
                    prop_assert!(pool.in_use() + r > quota);
                }
            }
            prop_assert!(pool.in_use() <= quota);
        }
        drop(grants);
        prop_assert_eq!(pool.in_use(), 0);
    }
}
