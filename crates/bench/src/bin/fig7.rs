//! Figure 7: disk I/O traffic (MB moved to/from disk) of the disk–tape
//! methods as a function of memory size (Experiment 3 configuration).
//!
//! The chart exposes the paper's space-for-traffic trade: the NB methods
//! re-read disk-resident R once per iteration (traffic explodes at small
//! `M`), the GH methods pay a fixed ~`2|S| + k|R|` for routing S through
//! disk buckets, and CDT-NB/MB does twice the iterations of DT-NB.

use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, paper_workload, TablePrinter};

fn main() {
    let methods = [
        JoinMethod::DtNb,
        JoinMethod::CdtNbMb,
        JoinMethod::CdtNbDb,
        JoinMethod::DtGh,
        JoinMethod::CdtGh,
    ];
    let mut headers = vec!["M/|R|".to_string()];
    headers.extend(methods.iter().map(|m| m.abbrev().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TablePrinter::new(&header_refs, csv_flag());

    println!("Figure 7: Disk I/O Traffic (MB)");
    println!("(|R| = 18 MB, |S| = 1000 MB, D = 50 MB)\n");

    for frac in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
        let cfg = paper_system(18.0 * frac, 50.0);
        let workload = paper_workload(&cfg, 18.0, 1000.0, 0.25);
        let mut cells = vec![format!("{frac:.1}")];
        for &method in &methods {
            let cell = match TertiaryJoin::new(cfg.clone()).run(method, &workload) {
                Ok(stats) => {
                    format!(
                        "{:.0}",
                        stats.disk.traffic() as f64 * cfg.block_bytes as f64 / 1e6
                    )
                }
                Err(_) => "-".to_string(),
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    table.print();
}
