//! Ablation: the grace bucket-fill target (a design choice of this
//! implementation, DESIGN.md §5).
//!
//! The paper's idealized plan (`B = |R|/M`, buckets exactly filling
//! memory) has zero slack: any skew overflows. This implementation
//! targets buckets at a fraction of the resident allowance (default
//! 0.85). Too low → many small buckets → sub-block appends and partial
//! tails; too high → frequent bucket overflow → S-bucket re-scans. This
//! ablation sweeps the target and reports response, disk traffic, and
//! the bucket count, at a memory size where granularity matters.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::{csv_flag, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_sim::Duration;

fn main() {
    let mut table = TablePrinter::new(
        &[
            "fill target",
            "CDT-GH (s)",
            "disk traffic (blk)",
            "S re-read (blk)",
        ],
        csv_flag(),
    );

    println!("Ablation: grace bucket-fill target (CDT-GH)");
    println!("(|R| = 18 MB, |S| = 250 MB, D = 50 MB, M = 4.5 MB)\n");

    let probe = tapejoin::SystemConfig::new(0, 0);
    let mut baseline_reads = None;
    for target in [0.3, 0.5, 0.7, 0.85, 1.0] {
        let cfg =
            tapejoin::SystemConfig::new(probe.mb_to_blocks(4.5).max(2), probe.mb_to_blocks(50.0))
                .disk_overhead(true)
                .grace_fill_target(target);
        let workload = WorkloadBuilder::new(SEED)
            .r(RelationSpec::new("R", cfg.mb_to_blocks(18.0)))
            .s(RelationSpec::new("S", cfg.mb_to_blocks(250.0)))
            .build();
        let stats = TertiaryJoin::new(cfg)
            .run(JoinMethod::CdtGh, &workload)
            .expect("feasible");
        assert_eq!(stats.output.pairs, workload.expected_pairs);
        // Overflow re-scans show up as extra disk reads beyond the
        // baseline volume.
        let base = *baseline_reads.get_or_insert(stats.disk.blocks_read);
        table.row(vec![
            format!("{target:.2}"),
            secs(stats.response.as_secs_f64()),
            stats.disk.traffic().to_string(),
            format!("{:+}", stats.disk.blocks_read as i64 - base as i64),
        ]);
        let _ = Duration::ZERO;
    }
    table.print();
    println!("\n(low targets multiply buckets and partial-tail merges; a target");
    println!("of 1.00 leaves no skew headroom, so oversized buckets re-scan");
    println!("their S bucket — the default 0.85 balances the two)");
}
