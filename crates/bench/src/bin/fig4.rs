//! Figure 4: disk space utilization during Step II of CTT-GH (Join III)
//! with interleaved double-buffering.
//!
//! The paper plots even-iteration usage (the shark-toothed lower line),
//! odd-iteration usage (the band between the lines) and total usage (the
//! top line at ~100%). This binary prints a downsampled version of the
//! same three series, plus their time-weighted means. Pass `--split` to
//! see the strawman split-buffer discipline for contrast (~50% mean).

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, paper_workload, pct, TablePrinter};
use tapejoin_buffer::DiskBufKind;

fn main() {
    let split = std::env::args().any(|a| a == "--split");
    let kind = if split {
        DiskBufKind::Split
    } else {
        DiskBufKind::Interleaved
    };

    // Join III: |S| = 5000 MB, |R| = 2500 MB, D = 500 MB, M = 16 MB.
    let cfg = paper_system(16.0, 500.0).disk_buffer(kind);
    let workload = paper_workload(&cfg, 2500.0, 5000.0, 0.25);
    let stats = TertiaryJoin::new(cfg.clone())
        .run(JoinMethod::CttGh, &workload)
        .expect("Join III is feasible");
    assert_eq!(stats.output.pairs, workload.expected_pairs);

    let probe = stats
        .buffer_probe
        .expect("CTT-GH stages S through the disk buffer");
    let capacity = cfg.disk_blocks as f64;

    println!(
        "Figure 4: Disk Space Utilization in CTT-GH (Step II of Join III), {} buffering",
        if split { "split" } else { "interleaved" }
    );
    println!("(percent of the {} MB disk buffer)\n", 500);

    let mut table = TablePrinter::new(
        &["Time (s)", "Even iters", "Odd iters", "Total"],
        csv_flag(),
    );
    let even = probe.even.points();
    let odd = probe.odd.points();
    let total = probe.total.downsample(24);
    for p in &total {
        // Sample the per-parity series at the same instants.
        let at = p.at;
        let sample = |pts: &[tapejoin_sim::TracePoint]| -> f64 {
            match pts.partition_point(|q| q.at <= at) {
                0 => 0.0,
                i => pts[i - 1].value,
            }
        };
        table.row(vec![
            format!("{:.0}", at.as_secs_f64()),
            pct(sample(&even) / capacity),
            pct(sample(&odd) / capacity),
            pct(p.value / capacity),
        ]);
    }
    table.print();

    println!();
    println!(
        "time-weighted mean utilization: {} (even {}, odd {})",
        pct(probe.total.time_weighted_mean() / capacity),
        pct(probe.even.time_weighted_mean() / capacity),
        pct(probe.odd.time_weighted_mean() / capacity),
    );
    println!(
        "peak utilization: {}",
        pct(probe.total.max_value() / capacity)
    );
}
