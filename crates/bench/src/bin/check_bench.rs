//! `check_bench` — validate every `results/BENCH_*.json` envelope.
//!
//! The bench bins hand-format their JSON result files; nothing ever
//! re-reads them in-repo, so a malformed envelope (or an embedded
//! `QueryProfile` that drifted from the schema) would ship silently.
//! This bin parses each `BENCH_*.json` with the obs JSON parser and
//! demands: the common envelope keys (`bench`, `title`, `seed`,
//! `time_unit`, non-empty `scenarios` of named objects); that any
//! `profile_fields` list equals the canonical
//! `tapejoin_obs::PROFILE_FIELDS` registry; and that every embedded
//! profile object (any object carrying `sql` + `operators`) passes
//! [`tapejoin_obs::validate_query_profile_value`]. CI runs it as
//! `scripts/check_bench.sh` in the `analyze` job; it exits non-zero on
//! the first invalid file.

// lint:allow-file(L3, a validation CLI's contract is to abort with context)

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tapejoin_obs::json::{self, Json};
use tapejoin_obs::{validate_query_profile_value, PROFILE_FIELDS};

fn main() -> ExitCode {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "results".to_string());
    let mut files = match bench_files(Path::new(&dir)) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("check_bench: cannot read {dir}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("check_bench: no BENCH_*.json under {dir}");
        return ExitCode::FAILURE;
    }
    files.sort();
    let mut ok = true;
    for f in &files {
        match check_file(f) {
            Ok(summary) => println!("check_bench: {} OK ({summary})", f.display()),
            Err(e) => {
                eprintln!("check_bench: {} INVALID: {e}", f.display());
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn bench_files(dir: &Path) -> Result<Vec<PathBuf>, std::io::Error> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("BENCH_") && name.ends_with(".json") {
            out.push(path);
        }
    }
    Ok(out)
}

fn check_file(path: &Path) -> Result<String, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let doc = json::parse(&text)?;
    let obj = doc.as_obj().ok_or("top level is not a JSON object")?;

    // The common envelope.
    for key in ["bench", "title", "seed", "time_unit", "scenarios"] {
        if !obj.contains_key(key) {
            return Err(format!("missing envelope key '{key}'"));
        }
    }
    let bench = obj
        .get("bench")
        .and_then(Json::as_num)
        .ok_or("'bench' is not a number")?;
    obj.get("title")
        .and_then(Json::as_str)
        .ok_or("'title' is not a string")?;
    let scenarios = obj
        .get("scenarios")
        .and_then(Json::as_arr)
        .ok_or("'scenarios' is not an array")?;
    if scenarios.is_empty() {
        return Err("'scenarios' is empty".to_string());
    }
    for (i, sc) in scenarios.iter().enumerate() {
        let sobj = sc
            .as_obj()
            .ok_or_else(|| format!("scenario {i} is not an object"))?;
        sobj.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("scenario {i} has no string 'name'"))?;
    }

    // A declared schema must be the canonical one.
    if let Some(fields) = obj.get("profile_fields") {
        let listed: Vec<&str> = fields
            .as_arr()
            .ok_or("'profile_fields' is not an array")?
            .iter()
            .filter_map(Json::as_str)
            .collect();
        if listed != PROFILE_FIELDS {
            return Err(format!(
                "'profile_fields' drifted from tapejoin_obs::PROFILE_FIELDS \
                 ({} vs {} fields)",
                listed.len(),
                PROFILE_FIELDS.len()
            ));
        }
    }

    // Every embedded profile must validate against the schema.
    let mut profiles = 0usize;
    validate_embedded(&doc, &mut profiles)?;
    Ok(format!(
        "bench {bench}, {} scenario(s), {profiles} embedded profile(s)",
        scenarios.len()
    ))
}

/// Recursively validate every object that looks like a `QueryProfile`
/// (carries both `sql` and `operators`).
fn validate_embedded(v: &Json, profiles: &mut usize) -> Result<(), String> {
    match v {
        Json::Obj(map) => {
            if map.contains_key("sql") && map.contains_key("operators") {
                let ops = validate_query_profile_value(v)
                    .map_err(|e| format!("embedded profile: {e}"))?;
                if ops == 0 {
                    return Err("embedded profile has no operators".to_string());
                }
                *profiles += 1;
                return Ok(());
            }
            for val in map.values() {
                validate_embedded(val, profiles)?;
            }
        }
        Json::Arr(items) => {
            for item in items {
                validate_embedded(item, profiles)?;
            }
        }
        _ => {}
    }
    Ok(())
}
