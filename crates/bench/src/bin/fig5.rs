//! Figure 5: Experiment 2 — impact of disk space on CDT-GH and CTT-GH.
//!
//! `|R|` = 18 MB, `|S|` = 1000 MB, `M = 0.1·|R|`, `D` swept from 54 MB
//! down toward 9 MB. CDT-GH degenerates as `D → |R|` (ever less space to
//! buffer S, ever more R scans); CTT-GH keeps all of `D` for S buffering
//! and stays flat — "a tape–tape join method such as CTT-GH is a better
//! alternative when D ≈ |R|".

use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::chart::AsciiChart;
use tapejoin_bench::{csv_flag, paper_system, paper_workload, secs, TablePrinter};

fn main() {
    let mut table = TablePrinter::new(&["D (MB)", "CDT-GH (s)", "CTT-GH (s)"], csv_flag());
    let mut cdt_pts = Vec::new();
    let mut ctt_pts = Vec::new();

    println!("Figure 5: Impact of Disk Space on CDT-GH and CTT-GH");
    println!("(|R| = 18 MB, |S| = 1000 MB, M = 1.8 MB)\n");

    for d_mb in [
        9.0, 13.5, 18.0, 22.5, 27.0, 31.5, 36.0, 40.5, 45.0, 50.0, 54.0,
    ] {
        let cfg = paper_system(1.8, d_mb);
        let workload = paper_workload(&cfg, 18.0, 1000.0, 0.25);
        let mut cells = vec![secs(d_mb)];
        for method in [JoinMethod::CdtGh, JoinMethod::CttGh] {
            let cell = match TertiaryJoin::new(cfg.clone()).run(method, &workload) {
                Ok(stats) => {
                    assert_eq!(stats.output.pairs, workload.expected_pairs);
                    let t = stats.response.as_secs_f64();
                    if method == JoinMethod::CdtGh {
                        cdt_pts.push((d_mb, t));
                    } else {
                        ctt_pts.push((d_mb, t));
                    }
                    secs(t)
                }
                Err(_) => "-".to_string(),
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    table.print();
    if !csv_flag() {
        println!("\nResponse time (s) vs D (MB):\n");
        print!(
            "{}",
            AsciiChart::new(56, 14)
                .series("CDT-GH", cdt_pts)
                .series("CTT-GH", ctt_pts)
                .render()
        );
    }
}
