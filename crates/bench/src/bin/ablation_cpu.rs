//! Ablation: per-tuple CPU cost (paper §3.2's "CPU cost can be ignored").
//!
//! The paper's transfer-only model assumes joins are I/O-bound. That was
//! true on a 90 MHz Pentium for its tuple rates — but only because tuples
//! were large relative to CPU speed. This ablation charges an explicit
//! CPU cost per hashed/probed tuple and sweeps it until the assumption
//! visibly breaks (response time departs from the zero-CPU baseline).
//!
//! With 4 tuples per 64 KiB block, a 2 MB/s tape delivers ~122 tuples/s
//! per drive — the assumption holds up to very large per-tuple costs.
//! Denser blocks (more tuples per block) stress it much harder, so the
//! sweep is run at two densities.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_bench::{csv_flag, pct, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_sim::Duration;

fn main() {
    let mut table = TablePrinter::new(
        &["tuples/block", "CPU/tuple", "CDT-GH (s)", "vs zero-CPU"],
        csv_flag(),
    );

    println!("Ablation: per-tuple CPU cost (CDT-GH)");
    println!("(|R| = 18 MB, |S| = 250 MB, D = 50 MB, M = 9 MB)\n");

    let probe = SystemConfig::new(0, 0);
    for density in [4u32, 64] {
        let mut baseline = None;
        for cpu_us in [0u64, 100, 1_000, 10_000] {
            let cfg = SystemConfig::new(probe.mb_to_blocks(9.0), probe.mb_to_blocks(50.0))
                .disk_overhead(true)
                .cpu_per_tuple(Duration::from_micros(cpu_us));
            let workload = WorkloadBuilder::new(SEED)
                .r(RelationSpec::new("R", cfg.mb_to_blocks(18.0)).tuples_per_block(density))
                .s(RelationSpec::new("S", cfg.mb_to_blocks(250.0)).tuples_per_block(density))
                .build();
            let stats = TertiaryJoin::new(cfg)
                .run(JoinMethod::CdtGh, &workload)
                .expect("feasible");
            assert_eq!(stats.output.pairs, workload.expected_pairs);
            let t = stats.response.as_secs_f64();
            let base = *baseline.get_or_insert(t);
            table.row(vec![
                density.to_string(),
                format!("{cpu_us} µs"),
                secs(t),
                if cpu_us == 0 {
                    "-".into()
                } else {
                    pct(t / base - 1.0)
                },
            ]);
        }
    }
    table.print();
    println!("\n(the paper's zero-CPU assumption holds while the per-tuple cost");
    println!("stays well under the per-tuple I/O time; dense blocks break it first)");
}
