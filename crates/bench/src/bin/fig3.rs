//! Figure 3 (large `|R|`): expected relative response time, analytic
//! cost model. See `fig1` for the parameterization.

use tapejoin_bench::figures_123;

fn main() {
    figures_123::run(
        "Figure 3: Large |R|",
        &[10.0, 30.0, 50.0, 70.0, 90.0, 110.0, 130.0, 150.0],
    );
}
