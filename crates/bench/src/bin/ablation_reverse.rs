//! Ablation: exploiting SCSI-2 `READ REVERSE` (paper §3.2, footnote 2).
//!
//! The paper notes that bi-directional reads "would make rewinds
//! unnecessary in all the algorithms we examine, as the algorithms are
//! independent of the order (direction) in which tuples or buckets of
//! tuples are scanned" — but DLT-4000 drives did not implement the
//! optional command, so the paper never measured it. This ablation does:
//! CTT-GH re-reads the hashed R extent once per Step II iteration, paying
//! one head reposition per frame on a forward-only drive; with reverse
//! reads, odd frames walk the extent backwards and the repositioning
//! disappears.
//!
//! The effect is largest where iterations are many and the extent is
//! small: the Experiment 2 configuration (D near |R|).

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, paper_workload, secs, TablePrinter};
use tapejoin_tape::TapeDriveModel;

fn main() {
    let mut table = TablePrinter::new(
        &[
            "D (MB)",
            "forward-only (s)",
            "with READ REVERSE (s)",
            "repositions saved",
        ],
        csv_flag(),
    );

    println!("Ablation: CTT-GH with and without READ REVERSE");
    println!("(|R| = 18 MB, |S| = 1000 MB, M = 1.8 MB; drive = DLT-4000 ± reverse)\n");

    for d_mb in [9.0, 18.0, 27.0, 36.0, 50.0] {
        let fwd_cfg = paper_system(1.8, d_mb);
        let rev_cfg = paper_system(1.8, d_mb)
            .tape_model(TapeDriveModel::dlt4000().with_read_reverse(true))
            .use_read_reverse(true);
        let w = paper_workload(&fwd_cfg, 18.0, 1000.0, 0.25);

        let fwd = TertiaryJoin::new(fwd_cfg)
            .run(JoinMethod::CttGh, &w)
            .expect("feasible");
        let rev = TertiaryJoin::new(rev_cfg)
            .run(JoinMethod::CttGh, &w)
            .expect("feasible");
        assert_eq!(fwd.output, rev.output, "direction changed the answer");

        table.row(vec![
            secs(d_mb),
            secs(fwd.response.as_secs_f64()),
            secs(rev.response.as_secs_f64()),
            format!(
                "{}",
                fwd.tape_r
                    .repositions
                    .saturating_sub(rev.tape_r.repositions)
            ),
        ]);
    }
    table.print();
    println!("\n(each saved reposition is a DLT locate of ~15 s; the algorithms'");
    println!("output is verified identical in both directions)");
}
