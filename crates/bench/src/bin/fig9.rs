//! Figures 9–11 (this binary: Figure 9, medium tape speed): relative
//! join overhead of the disk–tape methods as a function of memory size.
//!
//! Overhead = response / optimum − 1, where optimum is the bare transfer
//! time of S from tape. 25%-compressible data → `X_T` = 2.0 MB/s.

use tapejoin_bench::overhead_figure;

fn main() {
    overhead_figure::run("Figure 9: Relative Join Overhead (medium tape speed)", 0.25);
}
