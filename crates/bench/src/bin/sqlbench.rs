//! `sqlbench` — SQL-planned vs hand-planned join pipelines.
//!
//! Each scenario is one query over a generated catalog, planned twice:
//!
//! * **cost-based** — the tapejoin-sql physical planner enumerates
//!   left-deep orders and prices every stage (with catalog-derived skew
//!   hints) against the analytic cost model;
//! * **syntactic** — the joins run in `FROM`-clause order with the first
//!   feasible method, standing in for a hand-written plan that ignores
//!   both statistics and the machine.
//!
//! Both plans execute through the real simulated tertiary joins; the
//! row digests must agree (same answer), and the simulated join seconds
//! quantify what cost-based planning buys. Results go to stdout and
//! `results/BENCH_7.json` (all times are virtual seconds).

use tapejoin::SystemConfig;
use tapejoin_bench::{csv_flag, TablePrinter, SEED};
use tapejoin_rel::{KeyDistribution, RelationSpec};
use tapejoin_sql::exec::rows_digest;
use tapejoin_sql::{plan_statement, Catalog, PlannerMode, SqlError};

struct Scenario {
    name: &'static str,
    note: &'static str,
    sql: &'static str,
    catalog: Catalog,
    cfg: SystemConfig,
}

/// Small three-table star: `parts` dimension plus two uniform facts,
/// queried fact-first so the syntactic planner builds from the big table.
fn star_scenario() -> Result<Scenario, SqlError> {
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 8, SEED)?;
    cat.register_generated(
        RelationSpec::new("orders", 64),
        KeyDistribution::Uniform,
        32,
        SEED ^ 1,
    )?;
    cat.register_generated(
        RelationSpec::new("lines", 32),
        KeyDistribution::Uniform,
        32,
        SEED ^ 2,
    )?;
    Ok(Scenario {
        name: "star-fact-first",
        note: "3-way star, FROM order leads with the biggest fact table",
        sql: "SELECT parts.key, lines.rid FROM orders \
              JOIN parts ON orders.key = parts.key \
              JOIN lines ON parts.key = lines.key",
        catalog: cat,
        cfg: SystemConfig::new(32, 256),
    })
}

/// The skew acceptance scenario: a disk-bound machine (one slow disk)
/// joining a dimension against a large Zipf fact table — the catalog's
/// skew statistics steer the cost-based planner onto CAP.
fn skew_scenario() -> Result<Scenario, SqlError> {
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 64, SEED)?;
    cat.register_generated(
        RelationSpec::new("orders", 1024),
        KeyDistribution::Zipf { theta: 1.1 },
        256,
        SEED ^ 3,
    )?;
    Ok(Scenario {
        name: "skew-disk-bound",
        note: "Zipf facts on one slow disk; skew hints promote CAP",
        sql: "SELECT parts.key, orders.rid FROM parts \
              JOIN orders ON parts.key = orders.key",
        catalog: cat,
        cfg: SystemConfig::new(16, 192).disks(1).disk_rate(0.5e6),
    })
}

/// Selective filter + LIMIT over the star: pushdown shrinks the probe
/// side in both modes, so any remaining gap is pure join-order quality.
fn filtered_scenario() -> Result<Scenario, SqlError> {
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 8, SEED)?;
    cat.register_generated(
        RelationSpec::new("orders", 64),
        KeyDistribution::Uniform,
        32,
        SEED ^ 4,
    )?;
    cat.register_generated(
        RelationSpec::new("lines", 48),
        KeyDistribution::Uniform,
        32,
        SEED ^ 5,
    )?;
    Ok(Scenario {
        name: "star-filtered",
        note: "pushed WHERE + ORDER BY/LIMIT, gap is join order only",
        sql: "SELECT parts.key, orders.rid, lines.rid FROM lines \
              JOIN orders ON lines.key = orders.key \
              JOIN parts ON orders.key = parts.key \
              WHERE lines.key < 32 ORDER BY parts.key, orders.rid, lines.rid LIMIT 64",
        catalog: cat,
        cfg: SystemConfig::new(32, 256),
    })
}

struct ModeResult {
    order: Vec<String>,
    methods: Vec<&'static str>,
    est_s: f64,
    sim_s: f64,
    rows: u64,
    digest: u64,
}

fn run_mode(sc: &Scenario, mode: PlannerMode) -> Result<ModeResult, SqlError> {
    let planned = plan_statement(sc.sql, &sc.catalog, &sc.cfg, mode)?;
    let order = planned
        .plan
        .order
        .iter()
        .map(|&t| planned.bound.tables[t].name.clone())
        .collect();
    let out = planned.execute(&sc.catalog, &sc.cfg)?;
    Ok(ModeResult {
        order,
        methods: out.joins.iter().map(|j| j.method.abbrev()).collect(),
        est_s: planned.plan.est_join_seconds,
        sim_s: out
            .joins
            .iter()
            .map(|j| j.stats.response.as_secs_f64())
            .sum(),
        rows: out.rows.len() as u64,
        digest: rows_digest(&out.rows),
    })
}

fn json_str_list(items: &[impl AsRef<str>]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| {
            format!(
                "\"{}\"",
                s.as_ref().replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    format!("[{}]", quoted.join(", "))
}

fn json_mode(r: &ModeResult) -> String {
    format!(
        "{{\"order\": {}, \"methods\": {}, \"est_join_s\": {:.3}, \"sim_join_s\": {:.3}, \"rows\": {}, \"digest\": {}}}",
        json_str_list(&r.order),
        json_str_list(&r.methods),
        r.est_s,
        r.sim_s,
        r.rows,
        r.digest,
    )
}

fn main() {
    let scenarios = [star_scenario(), skew_scenario(), filtered_scenario()];
    let mut table = TablePrinter::new(
        &[
            "scenario", "planner", "order", "methods", "est (s)", "sim (s)", "rows",
        ],
        csv_flag(),
    );
    let mut entries = Vec::new();

    println!("SQL-planned vs hand-planned (syntactic FROM-order) join pipelines");
    println!("(simulated seconds; both planners must produce identical rows)\n");

    for sc in &scenarios {
        let sc = match sc {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("scenario setup failed: {e}");
                std::process::exit(1);
            }
        };
        let (cost, syn) = match (
            run_mode(sc, PlannerMode::CostBased),
            run_mode(sc, PlannerMode::Syntactic),
        ) {
            (Ok(c), Ok(s)) => (c, s),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{}: {e}", sc.name);
                std::process::exit(1);
            }
        };
        assert_eq!(
            (cost.rows, cost.digest),
            (syn.rows, syn.digest),
            "{}: planners disagree on the answer",
            sc.name
        );
        for (label, r) in [("cost-based", &cost), ("syntactic", &syn)] {
            table.row(vec![
                sc.name.to_string(),
                label.to_string(),
                r.order.join("->"),
                r.methods.join(","),
                format!("{:.1}", r.est_s),
                format!("{:.1}", r.sim_s),
                r.rows.to_string(),
            ]);
        }
        let speedup = if cost.sim_s > 0.0 {
            syn.sim_s / cost.sim_s
        } else {
            1.0
        };
        entries.push(format!(
            "    {{\n      \"name\": \"{}\", \"note\": \"{}\",\n      \"sql\": \"{}\",\n      \"machine\": {{\"memory_blocks\": {}, \"disk_blocks\": {}, \"disks\": {}, \"disk_rate_mb_s\": {:.2}}},\n      \"cost_based\": {},\n      \"syntactic\": {},\n      \"sim_speedup\": {:.3}\n    }}",
            sc.name,
            sc.note,
            sc.sql.replace('"', "\\\""),
            sc.cfg.memory_blocks,
            sc.cfg.disk_blocks,
            sc.cfg.disks,
            sc.cfg.disk_rate / 1e6,
            json_mode(&cost),
            json_mode(&syn),
            speedup,
        ));
    }
    table.print();

    let json = format!(
        "{{\n  \"bench\": 7,\n  \"title\": \"SQL-planned vs hand-planned join pipelines\",\n  \"seed\": {SEED},\n  \"time_unit\": \"simulated seconds\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_7.json", &json))
    {
        Ok(()) => println!("\nwrote results/BENCH_7.json"),
        Err(e) => {
            eprintln!("failed to write results/BENCH_7.json: {e}");
            std::process::exit(1);
        }
    }
}
