//! `sqlbench` — SQL-planned vs hand-planned join pipelines.
//!
//! Each scenario is one query over a generated catalog, planned twice:
//!
//! * **cost-based** — the tapejoin-sql physical planner enumerates
//!   left-deep orders and prices every stage (with catalog-derived skew
//!   hints) against the analytic cost model;
//! * **syntactic** — the joins run in `FROM`-clause order with the first
//!   feasible method, standing in for a hand-written plan that ignores
//!   both statistics and the machine.
//!
//! Both plans execute through the real simulated tertiary joins; the
//! row digests must agree (same answer), and the simulated join seconds
//! quantify what cost-based planning buys. Results go to stdout and
//! `results/BENCH_7.json` (all times are virtual seconds).
//!
//! The **feedback arm** closes the profiler loop: each scenario is
//! profiled under its *declared* statistics, the [`QueryProfile`] is
//! absorbed back into a copy of the catalog
//! ([`Catalog::absorb_profile`]), and the query is re-planned and re-run
//! under the *learned* statistics. The two runs must be digest-equal and
//! the learned plan must never be costlier; a catalog whose declared
//! skew is wrong (the `skew-misdeclared` scenario) shows the planner
//! recovering CAP from one profiled run. Results go to
//! `results/BENCH_8.json` with the declared run's full profile document
//! embedded.

use tapejoin::SystemConfig;
use tapejoin_bench::{csv_flag, TablePrinter, SEED};
use tapejoin_obs::{nearest_rank, validate_query_profile_json};
use tapejoin_rel::{KeyDistribution, RelationSpec};
use tapejoin_sql::exec::rows_digest;
use tapejoin_sql::{
    plan_statement, profile_query, Catalog, PlannerMode, Profiled, SqlError, TableStats,
};

/// Mirror of the canonical profile field registry
/// (`tapejoin_obs::PROFILE_FIELDS`). Lint rule L8 keeps this list, the
/// canonical one and the JSON validator in agreement; `main` re-checks
/// at runtime before emitting profiles into `BENCH_8.json`.
const PROFILE_FIELDS: [&str; 27] = [
    "sql",
    "mode",
    "join_order",
    "est_join_seconds",
    "actual_join_seconds",
    "operators",
    "op",
    "label",
    "est_rows",
    "actual_rows",
    "q_error",
    "method",
    "expected_seconds",
    "actual_seconds",
    "tape_seconds",
    "disk_seconds",
    "cpu_seconds",
    "alternatives",
    "faults",
    "fault_retries",
    "restarts",
    "work_salvaged_bytes",
    "table",
    "distinct_keys",
    "heavy_fraction",
    "zipf_theta",
    "filtered",
];

struct Scenario {
    name: &'static str,
    note: &'static str,
    sql: &'static str,
    catalog: Catalog,
    cfg: SystemConfig,
}

/// Small three-table star: `parts` dimension plus two uniform facts,
/// queried fact-first so the syntactic planner builds from the big table.
fn star_scenario() -> Result<Scenario, SqlError> {
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 8, SEED)?;
    cat.register_generated(
        RelationSpec::new("orders", 64),
        KeyDistribution::Uniform,
        32,
        SEED ^ 1,
    )?;
    cat.register_generated(
        RelationSpec::new("lines", 32),
        KeyDistribution::Uniform,
        32,
        SEED ^ 2,
    )?;
    Ok(Scenario {
        name: "star-fact-first",
        note: "3-way star, FROM order leads with the biggest fact table",
        sql: "SELECT parts.key, lines.rid FROM orders \
              JOIN parts ON orders.key = parts.key \
              JOIN lines ON parts.key = lines.key",
        catalog: cat,
        cfg: SystemConfig::new(32, 256),
    })
}

/// The skew acceptance scenario: a disk-bound machine (one slow disk)
/// joining a dimension against a large Zipf fact table — the catalog's
/// skew statistics steer the cost-based planner onto CAP.
fn skew_scenario() -> Result<Scenario, SqlError> {
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 64, SEED)?;
    cat.register_generated(
        RelationSpec::new("orders", 1024),
        KeyDistribution::Zipf { theta: 1.1 },
        256,
        SEED ^ 3,
    )?;
    Ok(Scenario {
        name: "skew-disk-bound",
        note: "Zipf facts on one slow disk; skew hints promote CAP",
        sql: "SELECT parts.key, orders.rid FROM parts \
              JOIN orders ON parts.key = orders.key",
        catalog: cat,
        cfg: SystemConfig::new(16, 192).disks(1).disk_rate(0.5e6),
    })
}

/// The feedback acceptance scenario: the same Zipf facts and disk-bound
/// machine as [`skew_scenario`], but the catalog *declares* the fact
/// table uniform — the planner has no reason to promote CAP until the
/// first profiled run teaches it the real key distribution.
fn misdeclared_scenario() -> Result<Scenario, SqlError> {
    let mut scratch = Catalog::new();
    scratch.register_generated(
        RelationSpec::new("orders", 1024),
        KeyDistribution::Zipf { theta: 1.1 },
        256,
        SEED ^ 3,
    )?;
    let orders = scratch
        .find("orders")
        // lint:allow(L3, the table was registered two lines above)
        .expect("just registered")
        .1
        .relation
        .clone();
    let mut declared = TableStats::measure(&orders);
    declared.zipf_theta = 0.0;
    declared.heavy_fraction = 0.0;
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 64, SEED)?;
    cat.register_with_stats("orders", orders, declared)?;
    Ok(Scenario {
        name: "skew-misdeclared",
        note: "Zipf facts declared uniform; one profiled run teaches the planner",
        sql: "SELECT parts.key, orders.rid FROM parts \
              JOIN orders ON parts.key = orders.key",
        catalog: cat,
        cfg: SystemConfig::new(16, 192).disks(1).disk_rate(0.5e6),
    })
}

/// Selective filter + LIMIT over the star: pushdown shrinks the probe
/// side in both modes, so any remaining gap is pure join-order quality.
fn filtered_scenario() -> Result<Scenario, SqlError> {
    let mut cat = Catalog::new();
    cat.register_dimension("parts", 8, SEED)?;
    cat.register_generated(
        RelationSpec::new("orders", 64),
        KeyDistribution::Uniform,
        32,
        SEED ^ 4,
    )?;
    cat.register_generated(
        RelationSpec::new("lines", 48),
        KeyDistribution::Uniform,
        32,
        SEED ^ 5,
    )?;
    Ok(Scenario {
        name: "star-filtered",
        note: "pushed WHERE + ORDER BY/LIMIT, gap is join order only",
        sql: "SELECT parts.key, orders.rid, lines.rid FROM lines \
              JOIN orders ON lines.key = orders.key \
              JOIN parts ON orders.key = parts.key \
              WHERE lines.key < 32 ORDER BY parts.key, orders.rid, lines.rid LIMIT 64",
        catalog: cat,
        cfg: SystemConfig::new(32, 256),
    })
}

struct ModeResult {
    order: Vec<String>,
    methods: Vec<&'static str>,
    est_s: f64,
    sim_s: f64,
    rows: u64,
    digest: u64,
}

fn run_mode(sc: &Scenario, mode: PlannerMode) -> Result<ModeResult, SqlError> {
    let planned = plan_statement(sc.sql, &sc.catalog, &sc.cfg, mode)?;
    let order = planned
        .plan
        .order
        .iter()
        .map(|&t| planned.bound.tables[t].name.clone())
        .collect();
    let out = planned.execute(&sc.catalog, &sc.cfg)?;
    Ok(ModeResult {
        order,
        methods: out.joins.iter().map(|j| j.method.abbrev()).collect(),
        est_s: planned.plan.est_join_seconds,
        sim_s: out
            .joins
            .iter()
            .map(|j| j.stats.response.as_secs_f64())
            .sum(),
        rows: out.rows.len() as u64,
        digest: rows_digest(&out.rows),
    })
}

/// One side of the feedback experiment: a profiled run plus its
/// estimate-quality summary.
struct FeedbackArm {
    order: Vec<String>,
    methods: Vec<String>,
    est_s: f64,
    sim_s: f64,
    rows: u64,
    digest: u64,
    q_p50: f64,
    q_max: f64,
    profile_json: String,
}

fn feedback_arm(p: &Profiled) -> FeedbackArm {
    let mut qs: Vec<f64> = p.profile.operators.iter().map(|o| o.q_error).collect();
    qs.sort_by(f64::total_cmp);
    FeedbackArm {
        order: p.profile.join_order.clone(),
        methods: p
            .output
            .joins
            .iter()
            .map(|j| j.stats.method.abbrev().to_string())
            .collect(),
        est_s: p.profile.est_join_seconds,
        sim_s: p.profile.actual_join_seconds,
        rows: p.output.rows.len() as u64,
        digest: rows_digest(&p.output.rows),
        q_p50: nearest_rank(&qs, 0.5).unwrap_or(1.0),
        q_max: qs.last().copied().unwrap_or(1.0),
        profile_json: p.profile.to_json(),
    }
}

/// Profile under the declared statistics, absorb, re-plan, re-profile.
fn run_feedback(sc: &Scenario) -> Result<(FeedbackArm, FeedbackArm, usize), SqlError> {
    let declared = profile_query(sc.sql, &sc.catalog, &sc.cfg, PlannerMode::CostBased)?;
    let mut learned_cat = sc.catalog.clone();
    let updated = learned_cat.absorb_profile(&declared.profile);
    let learned = profile_query(sc.sql, &learned_cat, &sc.cfg, PlannerMode::CostBased)?;
    Ok((feedback_arm(&declared), feedback_arm(&learned), updated))
}

fn json_feedback(a: &FeedbackArm) -> String {
    format!(
        "{{\"order\": {}, \"methods\": {}, \"est_join_s\": {:.3}, \"sim_join_s\": {:.3}, \"rows\": {}, \"digest\": {}, \"q_error_p50\": {:.3}, \"q_error_max\": {:.3}}}",
        json_str_list(&a.order),
        json_str_list(&a.methods),
        a.est_s,
        a.sim_s,
        a.rows,
        a.digest,
        a.q_p50,
        a.q_max,
    )
}

fn json_str_list(items: &[impl AsRef<str>]) -> String {
    let quoted: Vec<String> = items
        .iter()
        .map(|s| {
            format!(
                "\"{}\"",
                s.as_ref().replace('\\', "\\\\").replace('"', "\\\"")
            )
        })
        .collect();
    format!("[{}]", quoted.join(", "))
}

fn json_mode(r: &ModeResult) -> String {
    format!(
        "{{\"order\": {}, \"methods\": {}, \"est_join_s\": {:.3}, \"sim_join_s\": {:.3}, \"rows\": {}, \"digest\": {}}}",
        json_str_list(&r.order),
        json_str_list(&r.methods),
        r.est_s,
        r.sim_s,
        r.rows,
        r.digest,
    )
}

fn main() {
    let scenarios = [star_scenario(), skew_scenario(), filtered_scenario()];
    let mut table = TablePrinter::new(
        &[
            "scenario", "planner", "order", "methods", "est (s)", "sim (s)", "rows",
        ],
        csv_flag(),
    );
    let mut entries = Vec::new();

    println!("SQL-planned vs hand-planned (syntactic FROM-order) join pipelines");
    println!("(simulated seconds; both planners must produce identical rows)\n");

    for sc in &scenarios {
        let sc = match sc {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("scenario setup failed: {e}");
                std::process::exit(1);
            }
        };
        let (cost, syn) = match (
            run_mode(sc, PlannerMode::CostBased),
            run_mode(sc, PlannerMode::Syntactic),
        ) {
            (Ok(c), Ok(s)) => (c, s),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("{}: {e}", sc.name);
                std::process::exit(1);
            }
        };
        assert_eq!(
            (cost.rows, cost.digest),
            (syn.rows, syn.digest),
            "{}: planners disagree on the answer",
            sc.name
        );
        for (label, r) in [("cost-based", &cost), ("syntactic", &syn)] {
            table.row(vec![
                sc.name.to_string(),
                label.to_string(),
                r.order.join("->"),
                r.methods.join(","),
                format!("{:.1}", r.est_s),
                format!("{:.1}", r.sim_s),
                r.rows.to_string(),
            ]);
        }
        let speedup = if cost.sim_s > 0.0 {
            syn.sim_s / cost.sim_s
        } else {
            1.0
        };
        entries.push(format!(
            "    {{\n      \"name\": \"{}\", \"note\": \"{}\",\n      \"sql\": \"{}\",\n      \"machine\": {{\"memory_blocks\": {}, \"disk_blocks\": {}, \"disks\": {}, \"disk_rate_mb_s\": {:.2}}},\n      \"cost_based\": {},\n      \"syntactic\": {},\n      \"sim_speedup\": {:.3}\n    }}",
            sc.name,
            sc.note,
            sc.sql.replace('"', "\\\""),
            sc.cfg.memory_blocks,
            sc.cfg.disk_blocks,
            sc.cfg.disks,
            sc.cfg.disk_rate / 1e6,
            json_mode(&cost),
            json_mode(&syn),
            speedup,
        ));
    }
    table.print();

    let json = format!(
        "{{\n  \"bench\": 7,\n  \"title\": \"SQL-planned vs hand-planned join pipelines\",\n  \"seed\": {SEED},\n  \"time_unit\": \"simulated seconds\",\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        entries.join(",\n"),
    );
    match std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write("results/BENCH_7.json", &json))
    {
        Ok(()) => println!("\nwrote results/BENCH_7.json"),
        Err(e) => {
            eprintln!("failed to write results/BENCH_7.json: {e}");
            std::process::exit(1);
        }
    }

    feedback_bench();
}

/// The feedback arm: profile → absorb → re-plan, per scenario, emitting
/// `results/BENCH_8.json`.
fn feedback_bench() {
    assert_eq!(
        PROFILE_FIELDS,
        tapejoin_obs::PROFILE_FIELDS,
        "sqlbench's profile-field mirror fell out of sync with tapejoin-obs"
    );
    let scenarios = [star_scenario(), misdeclared_scenario()];
    let mut table = TablePrinter::new(
        &[
            "scenario", "stats", "order", "methods", "sim (s)", "q p50", "q max",
        ],
        csv_flag(),
    );
    let mut entries = Vec::new();

    println!("\nPlan-vs-actual feedback: declared vs learned statistics");
    println!("(each scenario profiled, absorbed into the catalog, re-planned)\n");

    for sc in &scenarios {
        let sc = match sc {
            Ok(sc) => sc,
            Err(e) => {
                eprintln!("scenario setup failed: {e}");
                std::process::exit(1);
            }
        };
        let (declared, learned, updated) = match run_feedback(sc) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("{}: {e}", sc.name);
                std::process::exit(1);
            }
        };
        assert!(updated > 0, "{}: no tables absorbed feedback", sc.name);
        assert_eq!(
            (declared.rows, declared.digest),
            (learned.rows, learned.digest),
            "{}: feedback changed the answer",
            sc.name
        );
        assert!(
            learned.sim_s <= declared.sim_s + 1e-6,
            "{}: learned plan costlier than declared ({:.3}s > {:.3}s)",
            sc.name,
            learned.sim_s,
            declared.sim_s
        );
        for (label, arm) in [("declared", &declared), ("learned", &learned)] {
            table.row(vec![
                sc.name.to_string(),
                label.to_string(),
                arm.order.join("->"),
                arm.methods.join(","),
                format!("{:.1}", arm.sim_s),
                format!("{:.2}", arm.q_p50),
                format!("{:.2}", arm.q_max),
            ]);
        }
        let speedup = if learned.sim_s > 0.0 {
            declared.sim_s / learned.sim_s
        } else {
            1.0
        };
        for arm in [&declared, &learned] {
            if let Err(e) = validate_query_profile_json(&arm.profile_json) {
                eprintln!("{}: emitted profile fails its own schema: {e}", sc.name);
                std::process::exit(1);
            }
        }
        entries.push(format!(
            "    {{\n      \"name\": \"{}\", \"note\": \"{}\",\n      \"sql\": \"{}\",\n      \"machine\": {{\"memory_blocks\": {}, \"disk_blocks\": {}, \"disks\": {}, \"disk_rate_mb_s\": {:.2}}},\n      \"tables_updated\": {},\n      \"declared\": {},\n      \"learned\": {},\n      \"digest_equal\": true,\n      \"sim_speedup\": {:.3},\n      \"declared_profile\": {}\n    }}",
            sc.name,
            sc.note,
            sc.sql.replace('"', "\\\""),
            sc.cfg.memory_blocks,
            sc.cfg.disk_blocks,
            sc.cfg.disks,
            sc.cfg.disk_rate / 1e6,
            updated,
            json_feedback(&declared),
            json_feedback(&learned),
            speedup,
            declared.profile_json.trim_end(),
        ));
    }
    table.print();

    let json = format!(
        "{{\n  \"bench\": 8,\n  \"title\": \"Plan-vs-actual feedback into the statistics catalog\",\n  \"seed\": {SEED},\n  \"time_unit\": \"simulated seconds\",\n  \"profile_fields\": {},\n  \"scenarios\": [\n{}\n  ]\n}}\n",
        json_str_list(&PROFILE_FIELDS),
        entries.join(",\n"),
    );
    match std::fs::write("results/BENCH_8.json", &json) {
        Ok(()) => println!("\nwrote results/BENCH_8.json"),
        Err(e) => {
            eprintln!("failed to write results/BENCH_8.json: {e}");
            std::process::exit(1);
        }
    }
}
