//! Ablation: surviving *unrecoverable* faults mid-join.
//!
//! `ablation_faults` sweeps recoverable errors — every fault is absorbed
//! by a retry or a media exchange and costs only time. This ablation
//! turns the exchange budget to zero so the first hard fault kills its
//! drive outright, and measures the checkpoint/resume machinery: each
//! method runs once clean, once with resume-from-checkpoint recovery,
//! and once with the same fault schedule but restart-from-scratch
//! recovery (checkpoints discarded). All three must produce bit-identical
//! output; the gap between the last two is the work the checkpoints
//! salvage.
//!
//! Every run is deterministic (seeded schedules in virtual time), so the
//! table reproduces exactly across machines.

use tapejoin::{FaultPlan, JoinMethod, RecoveryPolicy, SystemConfig, TertiaryJoin};
use tapejoin_bench::{csv_flag, pct, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_sim::Duration;

/// Probability of a hard (drive-killing) fault per tape block read.
const RATES: [f64; 3] = [0.02, 0.05, 0.10];

/// A fault plan whose hard faults are sticky: the exchange budget is
/// zero, so the drive fails and recovery must swap in a spare.
fn killer_plan(rate: f64) -> FaultPlan {
    FaultPlan::new(SEED)
        .tape_rates(0.0, rate)
        .tape_exchange(Duration::from_secs(50), 0)
}

fn main() {
    let probe = SystemConfig::new(0, 0);
    let m = probe.mb_to_blocks(9.0);
    let d = probe.mb_to_blocks(50.0);

    println!("Ablation: checkpoint/resume under unrecoverable faults");
    println!("(|R| = 18 MB, |S| = 250 MB, M = 9 MB, D = 50 MB; rate = hard-fault");
    println!("probability per tape block; exchange budget 0, 2 spare drives)\n");

    let mut table = TablePrinter::new(
        &[
            "method",
            "rate",
            "clean (s)",
            "resume (s)",
            "restart (s)",
            "resume win",
            "restarts",
            "salvaged MB",
        ],
        csv_flag(),
    );

    for method in JoinMethod::ALL {
        let workload = WorkloadBuilder::new(SEED)
            .r(RelationSpec::new("R", probe.mb_to_blocks(18.0)))
            .s(RelationSpec::new("S", probe.mb_to_blocks(250.0)))
            .build();
        let clean = match TertiaryJoin::new(SystemConfig::new(m, d).disk_overhead(true))
            .run(method, &workload)
        {
            Ok(stats) => stats,
            Err(e) => {
                println!("{}: {e}", method.abbrev());
                continue;
            }
        };

        for rate in RATES {
            let resumed = TertiaryJoin::new(
                SystemConfig::new(m, d)
                    .disk_overhead(true)
                    .faults(killer_plan(rate))
                    .recovery(RecoveryPolicy::with_spares(2).max_restarts(8)),
            )
            .run(method, &workload);
            let restarted = TertiaryJoin::new(
                SystemConfig::new(m, d)
                    .disk_overhead(true)
                    .faults(killer_plan(rate))
                    .recovery(
                        RecoveryPolicy::with_spares(2)
                            .max_restarts(8)
                            .restart_from_scratch(),
                    ),
            )
            .run(method, &workload);
            let (resumed, restarted) = match (resumed, restarted) {
                (Ok(a), Ok(b)) => (a, b),
                (Err(e), _) | (_, Err(e)) => {
                    table.row(vec![
                        method.abbrev().into(),
                        format!("{rate}"),
                        secs(clean.response.as_secs_f64()),
                        format!("({e})"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
            };
            // Differential guarantee: recovery never changes the output.
            assert_eq!(resumed.output, clean.output, "{method} resume diverged");
            assert_eq!(restarted.output, clean.output, "{method} restart diverged");
            let t_resume = resumed.response.as_secs_f64();
            let t_restart = restarted.response.as_secs_f64();
            table.row(vec![
                method.abbrev().into(),
                format!("{rate}"),
                secs(clean.response.as_secs_f64()),
                secs(t_resume),
                secs(t_restart),
                if resumed.restarts == 0 {
                    "-".into()
                } else {
                    pct(1.0 - t_resume / t_restart)
                },
                resumed.restarts.to_string(),
                format!(
                    "{:.1}",
                    resumed.work_salvaged_bytes as f64 / (1024.0 * 1024.0)
                ),
            ]);
        }
    }
    table.print();
    println!("\n(resume win = response time saved vs discarding the checkpoint and");
    println!("restarting the method from scratch on the same fault schedule; every");
    println!("recovered run reproduced the clean run's output bit for bit)");
}
