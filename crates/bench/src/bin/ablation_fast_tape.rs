//! Ablation: fast tapes, slow disks (paper §8's closing remark).
//!
//! "The reduction in the number of R scans may well offset the extra cost
//! of scanning R from tape instead of disk, and in situations where tape
//! drives are faster than disks, this would indeed be a more attractive
//! approach." The paper never measured that situation — its DLT-4000s
//! were slower than its disks. Here the disk/tape speed ratio is swept
//! through 1.0 and below at `D = 1.5·|R|` (where the disk-tape and
//! tape-tape approaches genuinely compete), confirming that CTT-GH's
//! advantage over CDT-GH widens as tapes get relatively faster.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_bench::{csv_flag, ratio, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_tape::TapeDriveModel;

fn main() {
    let mut table = TablePrinter::new(
        &["X_D / X_T", "CDT-GH (s)", "CTT-GH (s)", "CTT/CDT"],
        csv_flag(),
    );

    println!("Ablation: disk/tape speed ratio at D = 1.5·|R| (paper §8's remark)");
    println!("(|R| = 18 MB, |S| = 250 MB, M = 1.8 MB, X_T = 3.0 MB/s fixed)\n");

    let probe = SystemConfig::new(0, 0);
    // Tape fixed at 3.0 MB/s (50% compressible on a DLT); disks swept.
    for disk_each in [3.0e6, 2.25e6, 1.5e6, 1.125e6, 0.75e6] {
        let cfg = SystemConfig::new(probe.mb_to_blocks(1.8).max(2), probe.mb_to_blocks(27.0))
            .tape_model(TapeDriveModel::dlt4000())
            .disk_rate(disk_each)
            .disk_overhead(true);
        let workload = WorkloadBuilder::new(SEED)
            .r(RelationSpec::new("R", cfg.mb_to_blocks(18.0)).compressibility(0.5))
            .s(RelationSpec::new("S", cfg.mb_to_blocks(250.0)).compressibility(0.5))
            .build();
        let xt = cfg.tape_rate(0.5);
        let run = |m: JoinMethod| {
            TertiaryJoin::new(cfg.clone()).run(m, &workload).map(|s| {
                assert_eq!(s.output.pairs, workload.expected_pairs);
                s.response.as_secs_f64()
            })
        };
        let cdt = run(JoinMethod::CdtGh);
        let ctt = run(JoinMethod::CttGh).expect("CTT-GH always feasible here");
        let (cdt_cell, rel) = match cdt {
            Ok(t) => (secs(t), ratio(ctt / t)),
            Err(_) => ("-".into(), "-".into()),
        };
        table.row(vec![
            format!("{:.2}", cfg.aggregate_disk_rate() / xt),
            cdt_cell,
            secs(ctt),
            rel,
        ]);
    }
    table.print();
    println!("\n(ratios below 1.0 are the \"tape drives faster than disks\" regime;");
    println!("the CTT/CDT column falling below 1.0 confirms the paper's remark)");
}
