//! Figure 10: relative join overhead with a *slower* tape drive
//! (0%-compressible data → `X_T` = 1.5 MB/s). Lower tape speed raises
//! the optimum join time and shrinks every method's relative overhead;
//! the concurrent (disk-bound) methods shrink the most.

use tapejoin_bench::overhead_figure;

fn main() {
    overhead_figure::run("Figure 10: Relative Join Overhead (slower tape drive)", 0.0);
}
