//! `workload` — the multi-query fleet experiment.
//!
//! Plays a seeded synthetic query stream through the workload scheduler
//! under each admission policy and compares fleet metrics: makespan,
//! mean/p95 response, queueing delay, drive/disk utilization, robot
//! work and scan sharing. The skewed default workload (hot cartridge,
//! bimodal R sizes) makes the baseline's head-of-line blocking visible:
//! SJF and best-fit beat FIFO on mean response, and scan sharing beats
//! a non-sharing fleet on makespan.
//!
//! ```sh
//! cargo run --release -p tapejoin-bench --bin workload
//! cargo run --release -p tapejoin-bench --bin workload -- \
//!     --queries 24 --cartridges 4 --policy sjf --csv
//! cargo run --release -p tapejoin-bench --bin workload -- --smoke
//! ```

use tapejoin_sched::{FleetConfig, FleetReport, Policy, Scheduler, WorkloadGen};

struct Args {
    queries: usize,
    cartridges: usize,
    seed: u64,
    mean_interarrival_s: f64,
    policies: Vec<Policy>,
    share: bool,
    csv: bool,
    per_query: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        queries: 16,
        cartridges: 3,
        seed: 0x1997_0407,
        mean_interarrival_s: 90.0,
        policies: Policy::ALL.to_vec(),
        share: true,
        csv: false,
        per_query: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--queries" => args.queries = parse_num(&value("--queries")?)? as usize,
            "--cartridges" => args.cartridges = parse_num(&value("--cartridges")?)? as usize,
            "--seed" => args.seed = parse_num(&value("--seed")?)?,
            "--interarrival" => {
                args.mean_interarrival_s = value("--interarrival")?
                    .parse()
                    .map_err(|e| format!("--interarrival: {e}"))?
            }
            "--policy" => {
                let v = value("--policy")?;
                args.policies = if v == "all" {
                    Policy::ALL.to_vec()
                } else {
                    vec![Policy::parse(&v).ok_or_else(|| format!("unknown policy `{v}`"))?]
                };
            }
            "--no-share" => args.share = false,
            "--csv" => args.csv = true,
            "--per-query" => args.per_query = true,
            "--smoke" => {
                args.queries = 6;
                args.cartridges = 2;
                args.mean_interarrival_s = 60.0;
            }
            "--help" | "-h" => {
                println!(
                    "usage: workload [--queries N] [--cartridges N] [--seed N] \
                     [--interarrival SECS] [--policy fifo|sjf|best-fit|all] \
                     [--no-share] [--csv] [--per-query] [--smoke]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

fn parse_num(s: &str) -> Result<u64, String> {
    s.parse().map_err(|e| format!("`{s}`: {e}"))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let spec = WorkloadGen {
        seed: args.seed,
        queries: args.queries,
        cartridges: args.cartridges,
        mean_interarrival_s: args.mean_interarrival_s,
        ..WorkloadGen::default()
    }
    .generate();
    let fleet = FleetConfig {
        share_scans: args.share,
        ..FleetConfig::default()
    };
    if !args.csv {
        println!(
            "fleet: {} drives, {} memory blocks, {} disk blocks, sharing {}",
            fleet.drives,
            fleet.memory_blocks,
            fleet.disk_blocks,
            if fleet.share_scans { "on" } else { "off" },
        );
        println!(
            "workload: {} queries over {} cartridges (seed {:#x})\n",
            spec.queries.len(),
            spec.catalog.len(),
            args.seed,
        );
        println!(
            "{:<9} {:>6} {:>6} {:>11} {:>11} {:>11} {:>11} {:>7} {:>7} {:>9} {:>7}",
            "policy",
            "done",
            "rej",
            "makespan",
            "mean-resp",
            "p95-resp",
            "mean-wait",
            "drv%",
            "dsk%",
            "exchanges",
            "shared",
        );
    } else {
        println!(
            "policy,completed,rejected,makespan_s,mean_response_s,p95_response_s,\
             mean_wait_s,drive_util,disk_util,robot_exchanges,shared_queries"
        );
    }

    let sched = Scheduler::new(fleet);
    let mut reports: Vec<FleetReport> = Vec::new();
    for policy in &args.policies {
        let report = sched.run(&spec, *policy);
        if args.csv {
            println!(
                "{},{},{},{:.1},{:.1},{:.1},{:.1},{:.4},{:.4},{},{}",
                report.policy,
                report.completed(),
                report.rejected(),
                report.makespan.as_secs_f64(),
                report.mean_response().as_secs_f64(),
                report.p95_response().as_secs_f64(),
                report.mean_wait().as_secs_f64(),
                report.drive_utilization,
                report.disk_utilization,
                report.robot_exchanges,
                report.shared_queries,
            );
        } else {
            println!(
                "{:<9} {:>6} {:>6} {:>11} {:>11} {:>11} {:>11} {:>6.1}% {:>6.1}% {:>9} {:>7}",
                report.policy.name(),
                report.completed(),
                report.rejected(),
                report.makespan.to_string(),
                report.mean_response().to_string(),
                report.p95_response().to_string(),
                report.mean_wait().to_string(),
                100.0 * report.drive_utilization,
                100.0 * report.disk_utilization,
                report.robot_exchanges,
                report.shared_queries,
            );
        }
        if args.per_query && !args.csv {
            for o in &report.outcomes {
                println!(
                    "    q{:<3} {:<6} [{:>7}]  wait {:>10}  response {:>11}  {:>8} pairs",
                    o.id,
                    o.cartridge,
                    o.execution.label(),
                    o.wait(),
                    o.response()
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "-".into()),
                    o.output.pairs,
                );
            }
        }
        reports.push(report);
    }

    if !args.csv && args.policies.len() > 1 {
        let fifo = reports.iter().find(|r| r.policy == Policy::Fifo);
        if let Some(fifo) = fifo {
            println!();
            for r in &reports {
                if r.policy == Policy::Fifo {
                    continue;
                }
                let base = fifo.mean_response().as_secs_f64();
                let this = r.mean_response().as_secs_f64();
                if base > 0.0 {
                    println!(
                        "{} mean response vs fifo: {:+.1}%",
                        r.policy,
                        100.0 * (this - base) / base
                    );
                }
            }
        }
    }
}
