//! Ablation: interleaved vs split double-buffering (Section 4).
//!
//! The paper argues that splitting the buffer in halves (the "simple
//! approach") halves `|S_i|`, doubles the number of iterations — and thus
//! the number of R scans — and caps average buffer utilization at ~50%,
//! while interleaved reuse keeps full-size chunks at ~100% utilization.
//! This binary measures exactly that claim on two methods that stage S
//! through disk: CDT-NB/DB (Experiment 3 config) and CTT-GH (Join I
//! config).

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, paper_workload, pct, secs, TablePrinter};
use tapejoin_buffer::DiskBufKind;
use tapejoin_rel::JoinWorkload;

/// Returns (response seconds, mean buffer utilization, R re-read volume).
/// The R re-reads come from disk for CDT-NB/DB and from tape for CTT-GH.
fn measure(cfg: &SystemConfig, method: JoinMethod, w: &JoinWorkload) -> (f64, f64, u64) {
    let stats = TertiaryJoin::new(cfg.clone())
        .run(method, w)
        .expect("feasible");
    assert_eq!(stats.output.pairs, w.expected_pairs);
    let probe = stats.buffer_probe.expect("method stages S through disk");
    // Mean utilization relative to the buffer's capacity.
    let util = probe.total.time_weighted_mean() / probe.capacity as f64;
    let r_rereads = if method == JoinMethod::CttGh {
        stats.tape_r.blocks_read
    } else {
        stats.disk.blocks_read
    };
    (stats.response.as_secs_f64(), util, r_rereads)
}

fn main() {
    let mut table = TablePrinter::new(
        &[
            "method",
            "buffering",
            "response (s)",
            "mean util",
            "R re-reads (blk)",
        ],
        csv_flag(),
    );

    println!("Ablation: interleaved vs split disk double-buffering (Section 4)\n");

    // CDT-NB/DB, Experiment 3 config at mid memory.
    for kind in [DiskBufKind::Interleaved, DiskBufKind::Split] {
        let cfg = paper_system(9.0, 50.0).disk_buffer(kind);
        let w = paper_workload(&cfg, 18.0, 1000.0, 0.25);
        let (resp, util, r_reads) = measure(&cfg, JoinMethod::CdtNbDb, &w);
        table.row(vec![
            "CDT-NB/DB".into(),
            format!("{kind:?}"),
            secs(resp),
            pct(util),
            r_reads.to_string(),
        ]);
    }

    // CTT-GH, Join I config.
    for kind in [DiskBufKind::Interleaved, DiskBufKind::Split] {
        let cfg = paper_system(16.0, 100.0).disk_buffer(kind);
        let w = paper_workload(&cfg, 500.0, 1000.0, 0.25);
        let (resp, util, r_reads) = measure(&cfg, JoinMethod::CttGh, &w);
        table.row(vec![
            "CTT-GH".into(),
            format!("{kind:?}"),
            secs(resp),
            pct(util),
            r_reads.to_string(),
        ]);
    }

    table.print();
    println!("\n(split halves the chunk |S_i|, which doubles the number of");
    println!("iterations and therefore the tape reads of R; interleaving keeps");
    println!("full-size chunks and ~100% of the buffer in use)");
}
