//! Table 3: Experiment 1 — Concurrent Tape–Tape Grace Hash Join of two
//! large tape relations.
//!
//! Joins I–III: `|S|` = 1000/2500/5000 MB with `|R| = |S|/2`;
//! Join IV: `|S|` = 10000 MB, `|R|` = 2500 MB. `D = |R|/5`, `M` = 16 MB.
//! The table reports the bare read time of both relations, Step I time,
//! total response time, and the relative cost (response / bare read).

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, paper_workload, ratio, secs, TablePrinter};
use tapejoin_sim::transfer_time;

fn main() {
    let joins: [(&str, f64, f64); 4] = [
        ("Join I", 1000.0, 500.0),
        ("Join II", 2500.0, 1250.0),
        ("Join III", 5000.0, 2500.0),
        ("Join IV", 10000.0, 2500.0),
    ];

    let mut table = TablePrinter::new(
        &[
            "",
            "|S| (MB)",
            "|R| (MB)",
            "D (MB)",
            "Read S+R",
            "Step I",
            "Steps I+II",
            "Rel. Cost",
        ],
        csv_flag(),
    );

    println!("Table 3: Parameters and Execution Time of Concurrent Tape-Tape Grace Hash Join");
    println!("(M = 16 MB, 25% compressible data, times in simulated seconds)\n");

    for (name, s_mb, r_mb) in joins {
        let d_mb = r_mb / 5.0;
        let cfg = paper_system(16.0, d_mb);
        let workload = paper_workload(&cfg, r_mb, s_mb, 0.25);
        // Bare read time: both relations streamed once, serially, at the
        // drives' effective rate (the paper's baseline column).
        let bytes = (workload.r.block_count() + workload.s.block_count()) * cfg.block_bytes;
        let bare = transfer_time(bytes, cfg.tape_rate(0.25)).as_secs_f64();

        let stats = TertiaryJoin::new(cfg)
            .run(JoinMethod::CttGh, &workload)
            .expect("Experiment 1 configurations are feasible");
        assert_eq!(
            stats.output.pairs, workload.expected_pairs,
            "wrong join result"
        );

        table.row(vec![
            name.to_string(),
            secs(s_mb),
            secs(r_mb),
            secs(d_mb),
            format!("{} sec.", secs(bare)),
            format!("{} sec.", secs(stats.step1.as_secs_f64())),
            format!("{} sec.", secs(stats.response.as_secs_f64())),
            ratio(stats.response.as_secs_f64() / bare),
        ]);
    }
    table.print();
}
