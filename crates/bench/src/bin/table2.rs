//! Table 2: resource requirements of the tertiary join methods — the
//! paper's symbolic table plus the concrete requirement (and the measured
//! peaks) for the Experiment 3 configuration, demonstrating that the
//! implementation enforces what the table claims.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::requirements::{resource_needs, table2_symbolic};
use tapejoin::TertiaryJoin;
use tapejoin_bench::{csv_flag, paper_system, paper_workload, TablePrinter};

fn main() {
    println!("Table 2: Resource Requirements of Tertiary Join Methods (symbolic)\n");
    let mut sym = TablePrinter::new(&["method", "M", "D", "T_R", "T_S"], csv_flag());
    for (m, mem, d, tr, ts) in table2_symbolic() {
        sym.row(vec![m.into(), mem.into(), d.into(), tr.into(), ts.into()]);
    }
    sym.print();

    // Concrete: |R| = 18 MB, |S| = 180 MB, M = 4 MB, D = 50 MB.
    let cfg = paper_system(4.0, 50.0);
    let workload = paper_workload(&cfg, 18.0, 180.0, 0.25);
    let to_mb = |blocks: u64| format!("{:.1}", blocks as f64 * cfg.block_bytes as f64 / 1e6);

    println!("\nConcrete requirements and measured peaks (MB) for");
    println!("|R| = 18 MB, |S| = 180 MB, M = 4 MB, D = 50 MB:\n");
    let mut table = TablePrinter::new(
        &[
            "method", "M req", "D req", "T_R req", "T_S req", "M peak", "D peak",
        ],
        csv_flag(),
    );
    for method in tapejoin_bench::BENCH_METHODS {
        match resource_needs(
            method,
            &cfg,
            workload.r.block_count(),
            workload.s.block_count(),
            4,
        ) {
            Ok(needs) => {
                let stats = TertiaryJoin::new(cfg.clone())
                    .run(method, &workload)
                    .expect("feasible per resource_needs");
                assert_eq!(stats.output.pairs, workload.expected_pairs);
                table.row(vec![
                    method.abbrev().into(),
                    to_mb(needs.memory),
                    to_mb(needs.disk),
                    to_mb(needs.tape_r_scratch),
                    to_mb(needs.tape_s_scratch),
                    to_mb(stats.mem_peak),
                    to_mb(stats.disk_peak),
                ]);
            }
            Err(e) => {
                table.row(vec![
                    method.abbrev().into(),
                    format!("infeasible: {e}"),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ]);
            }
        }
    }
    table.print();
}
