//! Figure 11: relative join overhead with a *faster* tape drive
//! (50%-compressible data → `X_T` = 3.0 MB/s). A faster tape shrinks the
//! optimum join time, so every method's relative overhead grows — most
//! dramatically for the concurrent methods, whose absolute response is
//! pinned by disk bandwidth and does not benefit from the faster tape.

use tapejoin_bench::overhead_figure;

fn main() {
    overhead_figure::run("Figure 11: Relative Join Overhead (faster tape drive)", 0.5);
}
