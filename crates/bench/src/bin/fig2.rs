//! Figure 2 (medium `|R|`): expected relative response time, analytic
//! cost model. See `fig1` for the parameterization.

use tapejoin_bench::figures_123;

fn main() {
    figures_123::run(
        "Figure 2: Medium |R|",
        &[
            5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0, 27.5, 30.0, 32.5, 35.0,
        ],
    );
}
