//! Ablation: pipelined vs locally-stored join output (paper §3.2).
//!
//! "A natural case where the output cost is more likely to affect the
//! input cost is when the join method is required to store the query
//! output locally on disk. The resulting disk writes reduce the bandwidth
//! available for reads on the disk(s) involved." The paper folds this
//! into a reduced `X_D`; here the output stream is actually written,
//! competing with the join's own I/O, so the bandwidth loss emerges
//! rather than being assumed.
//!
//! Configuration: Experiment 3 at `M = 0.5|R|`, 25% of S matching (so the
//! output is a quarter of S and its pressure is visible but not
//! dominant).

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, OutputMode, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, pct, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};

fn main() {
    let mut table = TablePrinter::new(
        &[
            "method",
            "output",
            "response (s)",
            "slowdown",
            "output blocks",
        ],
        csv_flag(),
    );

    println!("Ablation: pipelined vs locally-stored join output");
    println!("(|R| = 18 MB, |S| = 1000 MB, D = 50 MB, M = 9 MB, 25% match rate)\n");

    for method in [
        JoinMethod::DtNb,
        JoinMethod::CdtNbMb,
        JoinMethod::CdtGh,
        JoinMethod::CttGh,
    ] {
        let base_cfg = paper_system(9.0, 50.0);
        let workload = WorkloadBuilder::new(SEED)
            .r(RelationSpec::new("R", base_cfg.mb_to_blocks(18.0)))
            .s(RelationSpec::new("S", base_cfg.mb_to_blocks(1000.0)))
            .match_fraction(0.25)
            .build();

        let piped = TertiaryJoin::new(base_cfg.clone())
            .run(method, &workload)
            .expect("feasible");
        let stored = TertiaryJoin::new(base_cfg.output(OutputMode::LocalDisk))
            .run(method, &workload)
            .expect("feasible");
        assert_eq!(
            piped.output, stored.output,
            "output mode changed the answer"
        );
        assert_eq!(piped.output_blocks, 0);
        assert!(stored.output_blocks > 0);

        let p = piped.response.as_secs_f64();
        let s = stored.response.as_secs_f64();
        table.row(vec![
            method.abbrev().into(),
            "pipelined".into(),
            secs(p),
            "-".into(),
            "0".into(),
        ]);
        table.row(vec![
            method.abbrev().into(),
            "local disk".into(),
            secs(s),
            pct(s / p - 1.0),
            stored.output_blocks.to_string(),
        ]);
    }
    table.print();
}
