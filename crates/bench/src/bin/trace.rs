//! `trace` — virtual-time tracing harness over the observability layer.
//!
//! Runs join methods (and optionally a scheduler workload) with an
//! enabled [`tapejoin_obs::Recorder`], writes Chrome/Perfetto
//! trace-event JSON plus metrics dumps for each run, and — under
//! `--check` — re-parses every emitted trace against the schema
//! validator and runs the conservation auditor, exiting nonzero on any
//! violation. This is the CI `trace-smoke` entry point.
//!
//! ```sh
//! cargo run --release -p tapejoin-bench --bin trace -- --all --check
//! cargo run --release -p tapejoin-bench --bin trace -- \
//!     --method CTT-GH --faults --out traces
//! ```

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use std::fs;
use std::path::{Path, PathBuf};

use tapejoin::{FaultPlan, JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_obs::{
    audit, check_fault_time, metrics_csv, metrics_json, perfetto_trace, validate_trace_event_json,
    Recorder,
};
use tapejoin_rel::{reference_join, RelationSpec, WorkloadBuilder};
use tapejoin_sched::{FleetConfig, Policy, Scheduler, WorkloadGen};

struct Args {
    methods: Vec<JoinMethod>,
    sched: bool,
    faults: bool,
    check: bool,
    out: PathBuf,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        methods: vec![JoinMethod::CdtGh],
        sched: false,
        faults: false,
        check: false,
        out: PathBuf::from("traces"),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--all" => {
                args.methods = JoinMethod::ALL.to_vec();
                args.sched = true;
            }
            "--method" => {
                let v = value("--method")?;
                let m = JoinMethod::ALL
                    .iter()
                    .find(|m| m.abbrev().eq_ignore_ascii_case(&v))
                    .ok_or_else(|| format!("unknown method `{v}`"))?;
                args.methods = vec![*m];
            }
            "--sched" => args.sched = true,
            "--faults" => args.faults = true,
            "--check" => args.check = true,
            "--out" => args.out = PathBuf::from(value("--out")?),
            "--help" | "-h" => {
                println!(
                    "usage: trace [--all] [--method ABBR] [--sched] [--faults] \
                     [--check] [--out DIR]"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    Ok(args)
}

/// Write one run's artifacts and (optionally) check them. Returns the
/// number of violations found.
fn emit(name: &str, rec: &Recorder, out: &Path, check: bool) -> usize {
    let trace = perfetto_trace(rec);
    let trace_path = out.join(format!("{name}.perfetto.json"));
    fs::write(&trace_path, &trace).expect("write trace");
    if let Some(reg) = rec.metrics() {
        let snap = reg.snapshot();
        fs::write(out.join(format!("{name}.metrics.csv")), metrics_csv(&snap))
            .expect("write metrics csv");
        fs::write(
            out.join(format!("{name}.metrics.json")),
            metrics_json(&snap),
        )
        .expect("write metrics json");
    }

    let mut violations = 0;
    if check {
        match validate_trace_event_json(&trace) {
            Ok(events) => println!("  {name}: {events} events, schema ok"),
            Err(e) => {
                eprintln!("  {name}: SCHEMA INVALID: {e}");
                violations += 1;
            }
        }
        let report = audit(rec);
        if report.is_ok() {
            println!("  {name}: {report}");
        } else {
            eprintln!("  {name}: {report}");
            violations += report.violations.len();
        }
    } else {
        println!("  {name}: {} spans -> {}", rec.len(), trace_path.display());
    }
    violations
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    fs::create_dir_all(&args.out).expect("create output directory");

    let w = WorkloadBuilder::new(0x0D1F)
        .r(RelationSpec::new("R", 48))
        .s(RelationSpec::new("S", 192))
        .build();
    let expected = reference_join(&w.r, &w.s);
    let mut violations = 0;

    for method in &args.methods {
        let rec = Recorder::enabled();
        let mut cfg = SystemConfig::new(16, 400).recorder(rec.share());
        if args.faults {
            cfg = cfg.faults(
                FaultPlan::new(7)
                    .tape_rates(0.08, 0.004)
                    .disk_error_rate(0.05),
            );
        }
        let stats = TertiaryJoin::new(cfg)
            .run(*method, &w)
            .expect("methods feasible on this machine");
        assert_eq!(stats.output, expected, "{method} output diverged");
        let name = method.abbrev().to_lowercase().replace('/', "-");
        violations += emit(&name, &rec, &args.out, args.check);
        if args.check {
            if let Err(e) = check_fault_time(&rec, stats.faults.retry_time) {
                eprintln!("  {name}: {e}");
                violations += 1;
            }
        }
    }

    if args.sched {
        let rec = Recorder::enabled();
        let spec = WorkloadGen {
            seed: 0x1997_0407,
            queries: 6,
            cartridges: 2,
            mean_interarrival_s: 60.0,
            ..WorkloadGen::default()
        }
        .generate();
        let fleet = FleetConfig {
            recorder: rec.share(),
            ..FleetConfig::default()
        };
        let report = Scheduler::new(fleet).run(&spec, Policy::Fifo);
        assert!(report.completed() > 0, "sched run completed no queries");
        violations += emit("sched-fifo", &rec, &args.out, args.check);
    }

    if violations > 0 {
        eprintln!("trace: {violations} violation(s)");
        std::process::exit(1);
    }
}
