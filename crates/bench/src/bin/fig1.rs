//! Figures 1–3 (this binary: Figure 1, small `|R|`): expected response
//! time of all seven join methods relative to the tape read time of S,
//! from the analytic cost model (§5.3).
//!
//! Parameters per the paper: `|S| = 10·|R|`, `D = 32·M`, `X_D = 2·X_T`,
//! x-axis = `|R| / M`. Pure transfer-only model (no positioning costs).

use tapejoin_bench::figures_123;

fn main() {
    figures_123::run(
        "Figure 1: Small |R|",
        &[1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0],
    );
}
