//! `explore` — interactive configuration explorer.
//!
//! Evaluate a configuration of your own: relation sizes, memory, disk,
//! compressibility and (optionally) a specific method. Prints the
//! planner's full ranking with analytic expectations, then executes the
//! chosen (or best) method and reports the measured statistics.
//!
//! ```sh
//! cargo run --release -p tapejoin-bench --bin explore -- \
//!     --r-mb 100 --s-mb 1000 --m-mb 4 --d-mb 60 --compress 0.25
//! cargo run --release -p tapejoin-bench --bin explore -- \
//!     --r-mb 2500 --s-mb 10000 --m-mb 16 --d-mb 500 --method CTT-GH
//! ```
//!
//! With `--sql`, the machine flags stay but the workload flags become a
//! three-table demo catalog (`parts` dimension sized by `--r-mb`;
//! `orders`, `lines` fact tables sized by `--s-mb`, with `--skew`
//! applied to `orders`' foreign keys), and the statement runs through
//! the tapejoin-sql planner — `EXPLAIN ...` prints the costed plan:
//!
//! ```sh
//! cargo run --release -p tapejoin-bench --bin explore -- \
//!     --m-mb 4 --d-mb 50 --skew 1.1 --sql \
//!     "EXPLAIN SELECT parts.key FROM parts JOIN orders ON parts.key = orders.key"
//! ```

use tapejoin::cost::{CostParams, SkewHint};
use tapejoin::planner::rank_methods_with_hint;
use tapejoin::{FaultPlan, JoinMethod, RecoveryPolicy, SystemConfig, TertiaryJoin};
use tapejoin_bench::chart::AsciiChart;
use tapejoin_bench::SEED;
use tapejoin_rel::{KeyDistribution, RelationSpec, WorkloadBuilder};
use tapejoin_sim::Duration;
use tapejoin_sql::{Catalog, PlannerMode, SqlOutcome};

/// Which parameter `--sweep` varies.
#[derive(Clone, Copy, PartialEq)]
enum Sweep {
    Memory,
    Disk,
}

struct Args {
    r_mb: f64,
    s_mb: f64,
    m_mb: f64,
    d_mb: f64,
    compress: f64,
    method: Option<JoinMethod>,
    overhead: bool,
    sweep: Option<Sweep>,
    fault_rate: f64,
    chaos_rate: f64,
    fault_seed: u64,
    skew: f64,
    sql: Option<String>,
    syntactic: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        r_mb: 18.0,
        s_mb: 250.0,
        m_mb: 4.0,
        d_mb: 50.0,
        compress: 0.25,
        method: None,
        overhead: true,
        sweep: None,
        fault_rate: 0.0,
        chaos_rate: 0.0,
        fault_seed: SEED,
        skew: 0.0,
        sql: None,
        syntactic: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--r-mb" => args.r_mb = parse_f64(&value("--r-mb")?)?,
            "--s-mb" => args.s_mb = parse_f64(&value("--s-mb")?)?,
            "--m-mb" => args.m_mb = parse_f64(&value("--m-mb")?)?,
            "--d-mb" => args.d_mb = parse_f64(&value("--d-mb")?)?,
            "--compress" => args.compress = parse_f64(&value("--compress")?)?,
            "--method" => {
                args.method = Some(value("--method")?.parse()?);
            }
            "--ideal-disks" => args.overhead = false,
            "--skew" => {
                args.skew = parse_f64(&value("--skew")?)?;
                if args.skew < 0.0 {
                    return Err("--skew takes a Zipf exponent >= 0".to_string());
                }
            }
            "--fault-rate" => args.fault_rate = parse_f64(&value("--fault-rate")?)?,
            "--chaos-rate" => args.chaos_rate = parse_f64(&value("--chaos-rate")?)?,
            "--fault-seed" => {
                args.fault_seed = value("--fault-seed")?
                    .parse()
                    .map_err(|_| "--fault-seed takes an integer".to_string())?;
            }
            "--sql" => args.sql = Some(value("--sql")?),
            "--syntactic" => args.syntactic = true,
            "--sweep" => {
                args.sweep = Some(match value("--sweep")?.as_str() {
                    "m" | "memory" => Sweep::Memory,
                    "d" | "disk" => Sweep::Disk,
                    other => return Err(format!("--sweep takes 'm' or 'd', got '{other}'")),
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: explore [--r-mb N] [--s-mb N] [--m-mb N] [--d-mb N] \
                     [--compress C] [--method ABBREV] [--ideal-disks] [--sweep m|d] \
                     [--skew S] [--fault-rate R] [--chaos-rate R] [--fault-seed N] \
                     [--sql STMT] [--syntactic]\n\n\
                     --sql STMT      run STMT (SELECT/EXPLAIN over the demo catalog:\n\
                                     parts, orders, lines) through the SQL planner\n\
                     --syntactic     with --sql: plan joins in FROM order instead of\n\
                                     enumerating cost-based orders\n\
                     --sweep m       vary memory from 5% of |R| up to |R| (chart per method)\n\
                     --sweep d       vary disk from 0.5x to 3x |R|\n\
                     --skew S        Zipf exponent of the S foreign keys (0 = uniform);\n\
                                     also feeds the planner's skew hint\n\
                     --fault-rate R  inject recoverable device faults (tape transient\n\
                                     rate R, hard rate R/20, disk error rate R/2)\n\
                     --chaos-rate R  inject unrecoverable faults (sticky hard faults at\n\
                                     rate R per tape block, zero exchange budget) and\n\
                                     recover via checkpoint/resume with 2 spare drives\n\
                     --fault-seed N  seed of the deterministic fault schedule"
                );
                std::process::exit(0);
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(args)
}

fn parse_f64(s: &str) -> Result<f64, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

/// `--fault-rate R` maps to a recoverable plan: tape transient rate `R`,
/// rare hard faults at `R/20` (recovered by media exchange), disk errors
/// at `R/2` (recovered by retry with capped backoff).
fn fault_plan(args: &Args) -> FaultPlan {
    let mut plan = FaultPlan::new(args.fault_seed)
        .tape_rates(args.fault_rate, args.fault_rate / 20.0)
        .disk_error_rate(args.fault_rate / 2.0);
    if args.chaos_rate > 0.0 {
        // `--chaos-rate` makes hard faults sticky: the exchange budget is
        // zero, so every hard fault kills its drive and the recovery
        // subsystem must swap a spare and resume from the checkpoint.
        plan = plan
            .tape_rates(args.fault_rate, args.chaos_rate)
            .tape_exchange(Duration::from_secs(50), 0);
    }
    plan
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e} (try --help)");
            std::process::exit(2);
        }
    };

    if let Some(sql) = &args.sql {
        run_sql(&args, sql);
        return;
    }

    if let Some(sweep) = args.sweep {
        run_sweep(&args, sweep);
        return;
    }

    let probe = SystemConfig::new(0, 0);
    let mut cfg = SystemConfig::new(
        probe.mb_to_blocks(args.m_mb).max(2),
        probe.mb_to_blocks(args.d_mb),
    )
    .disk_overhead(args.overhead);
    if args.fault_rate > 0.0 || args.chaos_rate > 0.0 {
        cfg = cfg.faults(fault_plan(&args));
    }
    if args.chaos_rate > 0.0 {
        cfg = cfg.recovery(RecoveryPolicy::with_spares(2).max_restarts(8));
    }

    let mut builder = WorkloadBuilder::new(SEED)
        .r(RelationSpec::new("R", cfg.mb_to_blocks(args.r_mb)).compressibility(args.compress))
        .s(RelationSpec::new("S", cfg.mb_to_blocks(args.s_mb)).compressibility(args.compress));
    if args.skew > 0.0 {
        builder = builder.distribution(KeyDistribution::Zipf { theta: args.skew });
    }
    let workload = builder.build();

    println!(
        "machine: M = {} MB ({} blocks), D = {} MB ({} blocks), X_T = {:.1} MB/s, X_D = {:.1} MB/s",
        args.m_mb,
        cfg.memory_blocks,
        args.d_mb,
        cfg.disk_blocks,
        cfg.tape_rate(args.compress) / 1e6,
        cfg.aggregate_disk_rate() / 1e6,
    );
    println!(
        "workload: |R| = {} MB ({} blocks), |S| = {} MB ({} blocks)\n",
        args.r_mb,
        workload.r.block_count(),
        args.s_mb,
        workload.s.block_count()
    );

    let params = CostParams::from_config(
        &cfg,
        workload.r.block_count(),
        workload.s.block_count(),
        args.compress,
    );
    let hint = SkewHint {
        zipf_theta: args.skew,
        ..SkewHint::uniform()
    };
    let ranking = rank_methods_with_hint(&params, &hint);
    if args.skew > 0.0 {
        println!("planner ranking (analytic model, Zipf θ = {}):", args.skew);
    } else {
        println!("planner ranking (analytic model):");
    }
    for c in &ranking {
        println!("  {:<9}  ~{:>8.0} s", c.method.abbrev(), c.expected_seconds);
    }
    let join = TertiaryJoin::new(cfg.clone());
    for method in JoinMethod::ALL {
        if !ranking.iter().any(|c| c.method == method) {
            match join.feasible(method, &workload) {
                Err(e) => println!("  {:<9}  {e}", method.abbrev()),
                Ok(()) => println!("  {:<9}  feasible but not costed", method.abbrev()),
            }
        }
    }

    let chosen = args.method.or_else(|| ranking.first().map(|c| c.method));
    let Some(method) = chosen else {
        println!("\nno feasible method for this configuration");
        std::process::exit(1);
    };

    println!("\nrunning {method} …");
    match join.run(method, &workload) {
        Ok(stats) => {
            println!("  response        {}", stats.response);
            println!("  step I          {}", stats.step1);
            println!("  result pairs    {}", stats.output.pairs);
            println!(
                "  tape R          {} blocks read / {} written / {} repositions",
                stats.tape_r.blocks_read, stats.tape_r.blocks_written, stats.tape_r.repositions
            );
            println!(
                "  tape S          {} blocks read / {} written",
                stats.tape_s.blocks_read, stats.tape_s.blocks_written
            );
            println!(
                "  disk            {} blocks traffic in {} requests",
                stats.disk.traffic(),
                stats.disk.read_requests + stats.disk.write_requests
            );
            println!(
                "  peaks           {} memory blocks, {} disk blocks",
                stats.mem_peak, stats.disk_peak
            );
            if args.chaos_rate > 0.0 {
                println!(
                    "  recovery        {} restarts, {:.1} MB salvaged by checkpoints{}",
                    stats.restarts,
                    stats.work_salvaged_bytes as f64 / (1024.0 * 1024.0),
                    match stats.replanned_method {
                        Some(m) => format!(", re-planned onto {m}"),
                        None => String::new(),
                    }
                );
            }
            if args.fault_rate > 0.0 || args.chaos_rate > 0.0 {
                let f = &stats.faults;
                println!(
                    "  faults          {} injected ({} tape transient, {} tape hard, {} disk), all recovered",
                    f.total(),
                    f.tape_transient,
                    f.tape_hard,
                    f.disk_errors
                );
                println!(
                    "  fault recovery  {} retries costing {} ({:.1}% of response)",
                    f.retries,
                    f.retry_time,
                    100.0 * f.retry_time.as_secs_f64() / stats.response.as_secs_f64()
                );
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// `--sql`: run one statement over the demo catalog. The `parts`
/// dimension is sized by `--r-mb`; the `orders` and `lines` fact tables
/// by `--s-mb`, with `--skew` Zipf-skewing `orders`' foreign keys so the
/// catalog statistics steer the planner toward DHH/CAP.
fn run_sql(args: &Args, sql: &str) {
    let probe = SystemConfig::new(0, 0);
    let cfg = SystemConfig::new(
        probe.mb_to_blocks(args.m_mb).max(2),
        probe.mb_to_blocks(args.d_mb),
    )
    .disk_overhead(args.overhead);

    let parts_blocks = cfg.mb_to_blocks(args.r_mb).max(1);
    let fact_blocks = cfg.mb_to_blocks(args.s_mb).max(1);
    let key_span = parts_blocks * 4; // one key per dimension tuple
    let orders_dist = if args.skew > 0.0 {
        KeyDistribution::Zipf { theta: args.skew }
    } else {
        KeyDistribution::Uniform
    };
    let mut catalog = Catalog::new();
    let registered = (|| {
        catalog.register_dimension("parts", parts_blocks, SEED)?;
        catalog.register_generated(
            RelationSpec::new("orders", fact_blocks).compressibility(args.compress),
            orders_dist,
            key_span,
            SEED ^ 1,
        )?;
        catalog.register_generated(
            RelationSpec::new("lines", (fact_blocks / 2).max(1)).compressibility(args.compress),
            KeyDistribution::Uniform,
            key_span,
            SEED ^ 2,
        )
    })();
    if let Err(e) = registered {
        eprintln!("error building demo catalog: {e}");
        std::process::exit(1);
    }

    println!(
        "demo catalog: parts {} blocks (dimension), orders {} blocks{}, lines {} blocks",
        parts_blocks,
        fact_blocks,
        if args.skew > 0.0 {
            format!(" (Zipf θ = {})", args.skew)
        } else {
            String::new()
        },
        (fact_blocks / 2).max(1),
    );
    println!(
        "machine: M = {} blocks, D = {} blocks, {} planner\n",
        cfg.memory_blocks,
        cfg.disk_blocks,
        if args.syntactic {
            "syntactic"
        } else {
            "cost-based"
        },
    );

    let mode = if args.syntactic {
        PlannerMode::Syntactic
    } else {
        PlannerMode::CostBased
    };
    match tapejoin_sql::run(sql, &catalog, &cfg, mode) {
        Ok(SqlOutcome::Plan(text)) => print!("{text}"),
        Ok(SqlOutcome::Profile(p)) => print!("{}", p.text),
        Ok(SqlOutcome::Rows(out)) => {
            for run in &out.joins {
                println!(
                    "join stage {:<9} expected ~{:>8.0} s, simulated {} ({} pairs)",
                    run.method.abbrev(),
                    run.expected_seconds,
                    run.stats.response,
                    run.stats.output.pairs,
                );
            }
            println!("{} rows", out.rows.len());
            for row in out.rows.iter().take(10) {
                let cells: Vec<String> = row.iter().map(|v| v.to_string()).collect();
                println!("  ({})", cells.join(", "));
            }
            if out.rows.len() > 10 {
                println!("  … {} more", out.rows.len() - 10);
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

/// Sweep memory or disk across a range and chart the measured response
/// of every feasible method.
fn run_sweep(args: &Args, sweep: Sweep) {
    let probe = SystemConfig::new(0, 0);
    let workload_for = |cfg: &SystemConfig| {
        let mut b = WorkloadBuilder::new(SEED)
            .r(RelationSpec::new("R", cfg.mb_to_blocks(args.r_mb)).compressibility(args.compress))
            .s(RelationSpec::new("S", cfg.mb_to_blocks(args.s_mb)).compressibility(args.compress));
        if args.skew > 0.0 {
            b = b.distribution(KeyDistribution::Zipf { theta: args.skew });
        }
        b.build()
    };
    let points: Vec<f64> = match sweep {
        Sweep::Memory => (1..=10).map(|i| args.r_mb * i as f64 / 10.0).collect(),
        Sweep::Disk => (1..=10)
            .map(|i| args.r_mb * (0.5 + 0.28 * i as f64))
            .collect(),
    };
    let (axis, fixed) = match sweep {
        Sweep::Memory => ("M (MB)", format!("D = {} MB", args.d_mb)),
        Sweep::Disk => ("D (MB)", format!("M = {} MB", args.m_mb)),
    };
    println!(
        "sweep over {axis}: |R| = {} MB, |S| = {} MB, {fixed}, c = {}\n",
        args.r_mb, args.s_mb, args.compress
    );

    let methods: Vec<JoinMethod> = match args.method {
        Some(m) => vec![m],
        None => JoinMethod::ALL.to_vec(),
    };
    let mut chart = AsciiChart::new(56, 16);
    for method in methods {
        let mut series = Vec::new();
        for &x in &points {
            let (m_mb, d_mb) = match sweep {
                Sweep::Memory => (x, args.d_mb),
                Sweep::Disk => (args.m_mb, x),
            };
            let mut cfg =
                SystemConfig::new(probe.mb_to_blocks(m_mb).max(2), probe.mb_to_blocks(d_mb))
                    .disk_overhead(args.overhead);
            if args.fault_rate > 0.0 {
                cfg = cfg.faults(fault_plan(args));
            }
            let workload = workload_for(&cfg);
            if let Ok(stats) = TertiaryJoin::new(cfg).run(method, &workload) {
                series.push((x, stats.response.as_secs_f64()));
            }
        }
        if !series.is_empty() {
            println!("{:<9}  {} feasible points", method.abbrev(), series.len());
            chart = chart.series(method.abbrev(), series);
        } else {
            println!("{:<9}  infeasible across the sweep", method.abbrev());
        }
    }
    println!("\nResponse time (s) vs {axis}:\n");
    print!("{}", chart.render());
}
