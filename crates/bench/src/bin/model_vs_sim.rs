//! Validation artifact: the analytic cost model against the executed
//! simulation, side by side, for every method across a configuration
//! grid — the quantitative version of the agreement the integration
//! tests assert with tolerances.
//!
//! Uses transfer-only devices (ideal tape at 2 MB/s, no disk positioning)
//! so the comparison isolates the model's structural assumptions: the
//! residual deltas are pipeline start-up edges, device queueing, and the
//! partial-block effects the closed forms round away.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::cost::{expected_response, CostParams};
use tapejoin::{JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_bench::{csv_flag, pct, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};
use tapejoin_tape::TapeDriveModel;

fn main() {
    let mut table = TablePrinter::new(
        &[
            "config (R,S,M,D blocks)",
            "method",
            "analytic (s)",
            "simulated (s)",
            "delta",
        ],
        csv_flag(),
    );

    println!("Analytic model vs executed simulation (transfer-only devices)\n");

    let grid = [
        (150u64, 1500u64, 32u64, 400u64),
        (280, 2000, 64, 600),
        (400, 3000, 96, 900),
        (280, 2000, 64, 300), // D < |R|: tape-tape territory
    ];

    for (r, s, m, d) in grid {
        let cfg = SystemConfig::new(m, d)
            .tape_model(TapeDriveModel::ideal(2.0e6))
            .disk_overhead(false);
        let workload = WorkloadBuilder::new(SEED)
            .r(RelationSpec::new("R", r).compressibility(0.0))
            .s(RelationSpec::new("S", s).compressibility(0.0))
            .build();
        let p = CostParams {
            r_blocks: r,
            s_blocks: s,
            memory: m,
            disk: d,
            block_bytes: cfg.block_bytes,
            tape_rate: 2.0e6,
            disk_rate: cfg.aggregate_disk_rate(),
            r_tuples_per_block: 4,
            tape_reposition_s: 0.0,
        };
        for method in JoinMethod::ALL {
            let analytic = match expected_response(method, &p) {
                Ok(t) => t,
                Err(_) => continue,
            };
            let stats = TertiaryJoin::new(cfg.clone())
                .run(method, &workload)
                .expect("feasible if the model costed it");
            assert_eq!(stats.output.pairs, workload.expected_pairs);
            let simulated = stats.response.as_secs_f64();
            table.row(vec![
                format!("({r},{s},{m},{d})"),
                method.abbrev().into(),
                secs(analytic),
                secs(simulated),
                pct(simulated / analytic - 1.0),
            ]);
        }
    }
    table.print();
    println!("\n(positive deltas are pipeline/queueing/quantization effects the");
    println!("closed forms abstract; the simulation never beats the model's");
    println!("physical floors — asserted by tests/analytic_vs_sim.rs)");
}
