//! Figure 8: response time of the five disk–tape join methods as a
//! function of memory size (fraction of `|R|`), Experiment 3 base case
//! (25%-compressible data → medium tape speed).
//!
//! `|S|` = 1000 MB, `|R|` = 18 MB, `D` = 50 MB.

use tapejoin::{optimum_join_time, JoinMethod};
use tapejoin_bench::chart::AsciiChart;
use tapejoin_bench::{csv_flag, paper_system, paper_workload, secs, TablePrinter};

fn main() {
    let methods = [
        JoinMethod::DtNb,
        JoinMethod::CdtNbMb,
        JoinMethod::CdtNbDb,
        JoinMethod::DtGh,
        JoinMethod::CdtGh,
    ];
    let fractions = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

    let mut headers = vec!["M/|R|".to_string(), "Optimum".to_string()];
    headers.extend(methods.iter().map(|m| m.abbrev().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TablePrinter::new(&header_refs, csv_flag());
    let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); methods.len()];

    println!("Figure 8: Response Time of Joins (seconds, 25% compressible tape data)");
    println!("|S| = 1000 MB, |R| = 18 MB, D = 50 MB\n");

    for &frac in &fractions {
        let cfg = paper_system(18.0 * frac, 50.0);
        let workload = paper_workload(&cfg, 18.0, 1000.0, 0.25);
        let optimum = optimum_join_time(&cfg, &workload).as_secs_f64();
        let mut cells = vec![format!("{frac:.2}"), secs(optimum)];
        for (mi, &method) in methods.iter().enumerate() {
            let cell = match tapejoin::TertiaryJoin::new(cfg.clone()).run(method, &workload) {
                Ok(stats) => {
                    assert_eq!(
                        stats.output.pairs, workload.expected_pairs,
                        "{method} produced a wrong join"
                    );
                    let t = stats.response.as_secs_f64();
                    curves[mi].push((frac, t));
                    secs(t)
                }
                Err(_) => "-".to_string(),
            };
            cells.push(cell);
        }
        table.row(cells);
    }
    table.print();
    if !csv_flag() {
        println!("\nResponse time (s) vs M/|R| (the small-M blow-up dominates the");
        println!("scale; see the table for the large-M detail):\n");
        let mut chart = AsciiChart::new(56, 16);
        for (mi, method) in methods.iter().enumerate() {
            chart = chart.series(method.abbrev(), curves[mi].clone());
        }
        print!("{}", chart.render());
    }
}
