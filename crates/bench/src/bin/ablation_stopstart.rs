//! Ablation: tape stop/start (back-hitch) penalties.
//!
//! The paper assumes "the tape drive has enough buffer memory to hide
//! these delays" (§3.2) and charges nothing for streaming interruptions.
//! This ablation lifts the assumption: each break in streaming costs a
//! configurable back-hitch, swept from 0 (the paper's model) to several
//! seconds (a bufferless drive).
//!
//! Expectation: the sequential methods break streaming constantly (the
//! tape idles while the disks work, then restarts), so they degrade
//! steeply; CTT-GH's hash process keeps tape S streaming but its
//! bucket-by-bucket reads of tape R stop and restart per bucket.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{JoinMethod, TertiaryJoin};
use tapejoin_bench::{csv_flag, paper_system, paper_workload, secs, TablePrinter};
use tapejoin_sim::Duration;
use tapejoin_tape::TapeDriveModel;

fn main() {
    let methods = [
        JoinMethod::DtNb,
        JoinMethod::CdtNbMb,
        JoinMethod::CdtGh,
        JoinMethod::CttGh,
    ];
    let mut headers = vec!["back-hitch".to_string()];
    headers.extend(methods.iter().map(|m| m.abbrev().to_string()));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = TablePrinter::new(&header_refs, csv_flag());

    println!("Ablation: tape stop/start penalty (response seconds)");
    println!("(|R| = 18 MB, |S| = 250 MB, D = 50 MB, M = 9 MB)\n");

    for penalty_s in [0u64, 1, 2, 5] {
        let model = TapeDriveModel::dlt4000().with_stop_start(Duration::from_secs(penalty_s));
        let cfg = paper_system(9.0, 50.0).tape_model(model);
        let workload = paper_workload(&cfg, 18.0, 250.0, 0.25);
        let mut cells = vec![format!("{penalty_s} s")];
        for &method in &methods {
            let stats = TertiaryJoin::new(cfg.clone())
                .run(method, &workload)
                .expect("feasible");
            assert_eq!(stats.output.pairs, workload.expected_pairs);
            let restarts = stats.tape_r.stop_starts + stats.tape_s.stop_starts;
            cells.push(format!(
                "{} ({restarts} hitches)",
                secs(stats.response.as_secs_f64())
            ));
        }
        table.row(cells);
    }
    table.print();
    println!("\n(at 0 s this is the paper's model; the hitch counts show which");
    println!("methods rely on the drive's internal buffering to stay streaming)");
}
