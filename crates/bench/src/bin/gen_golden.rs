//! Internal helper: print the golden fingerprints used by tests/golden.rs.
//! Re-run after any intentional model change and update the test table.

// lint:allow-file(L3, experiment CLI: an infeasible config or I/O failure should abort the run with context)
use tapejoin::{SystemConfig, TertiaryJoin};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};

fn main() {
    let w = WorkloadBuilder::new(0xBEEF)
        .r(RelationSpec::new("R", 96))
        .s(RelationSpec::new("S", 480))
        .build();
    for method in tapejoin_bench::BENCH_METHODS {
        let cfg = SystemConfig::new(20, 300).disk_overhead(true);
        let s = TertiaryJoin::new(cfg).run(method, &w).unwrap();
        println!(
            "        (JoinMethod::{:?}, {}, {}, {}),",
            method,
            s.response.as_nanos(),
            s.output.digest,
            s.disk.traffic(),
        );
    }
}
