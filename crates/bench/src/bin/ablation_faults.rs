//! Ablation: response-time degradation under device faults.
//!
//! The paper's model assumes clean media and flawless drives. Real
//! tertiary storage of the DLT-4000 era did not oblige: transient read
//! errors cost an ECC re-read cycle (reposition + re-read), rare hard
//! faults cost a media exchange, and disk requests occasionally retried
//! after a backoff. This ablation sweeps a recoverable fault rate across
//! all seven methods and charts how gracefully each degrades.
//!
//! Every run is deterministic (seeded fault schedules in virtual time)
//! and differentially verified: the join output under faults must equal
//! the clean run's output exactly — faults only cost time.
//!
//! Methods that reposition a lot amplify transient faults (each re-read
//! pays the reposition again), and methods that push more disk traffic
//! see proportionally more disk retries — so the degradation ordering is
//! *not* the clean-response ordering.

use tapejoin::{FaultPlan, JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_bench::chart::AsciiChart;
use tapejoin_bench::{csv_flag, pct, secs, TablePrinter, SEED};
use tapejoin_rel::{RelationSpec, WorkloadBuilder};

/// Tape transient rate per block read; hard faults ride at 1/20 of it
/// and disk errors at 1/2 (see `FaultPlan`).
const RATES: [f64; 5] = [0.0, 0.01, 0.02, 0.05, 0.10];

fn main() {
    let probe = SystemConfig::new(0, 0);
    let m = probe.mb_to_blocks(9.0);
    let d = probe.mb_to_blocks(50.0);

    println!("Ablation: deterministic fault injection, all methods");
    println!("(|R| = 18 MB, |S| = 250 MB, M = 9 MB, D = 50 MB; rate = tape");
    println!("transient probability per block; hard = rate/20, disk = rate/2)\n");

    let mut table = TablePrinter::new(
        &[
            "method",
            "rate",
            "response (s)",
            "slowdown",
            "faults",
            "retries",
            "recovery (s)",
        ],
        csv_flag(),
    );
    let mut chart = AsciiChart::new(56, 16);

    for method in JoinMethod::ALL {
        let mut baseline = None;
        let mut series = Vec::new();
        for rate in RATES {
            let mut cfg = SystemConfig::new(m, d).disk_overhead(true);
            if rate > 0.0 {
                cfg = cfg.faults(
                    FaultPlan::new(SEED)
                        .tape_rates(rate, rate / 20.0)
                        .disk_error_rate(rate / 2.0),
                );
            }
            let workload = WorkloadBuilder::new(SEED)
                .r(RelationSpec::new("R", cfg.mb_to_blocks(18.0)))
                .s(RelationSpec::new("S", cfg.mb_to_blocks(250.0)))
                .build();
            let stats = match TertiaryJoin::new(cfg).run(method, &workload) {
                Ok(stats) => stats,
                Err(e) => {
                    table.row(vec![
                        method.abbrev().into(),
                        format!("{rate}"),
                        format!("({e})"),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                        "-".into(),
                    ]);
                    continue;
                }
            };
            // Differential guarantee: recoverable faults never change
            // the join's output.
            assert_eq!(stats.output.pairs, workload.expected_pairs, "{method}");
            let t = stats.response.as_secs_f64();
            let base = *baseline.get_or_insert(t);
            table.row(vec![
                method.abbrev().into(),
                format!("{rate}"),
                secs(t),
                if rate == 0.0 {
                    "-".into()
                } else {
                    pct(t / base - 1.0)
                },
                stats.faults.total().to_string(),
                stats.faults.retries.to_string(),
                secs(stats.faults.retry_time.as_secs_f64()),
            ]);
            series.push((rate, t / base));
        }
        if !series.is_empty() {
            chart = chart.series(method.abbrev(), series);
        }
    }
    table.print();
    println!("\nRelative response (vs own clean run) by fault rate:\n");
    print!("{}", chart.render());
    println!("\n(every faulty run reproduced its clean output exactly; the cost of");
    println!("unreliable media is pure recovery time, amplified by repositioning)");
}
