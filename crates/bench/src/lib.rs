//! `tapejoin-bench` — the experiment harness that regenerates every table
//! and figure of the paper's evaluation (Sections 5.3 and 7–9).
//!
//! One binary per table/figure lives in `src/bin/`; each prints the
//! paper's rows or series to stdout (pass `--csv` for machine-readable
//! output). The configurations mirror the paper's experimental system: a
//! Pentium workstation with two Quantum DLT-4000 drives, three disks on
//! two SCSI buses modelled as `X_D ≈ 2 X_T`, 64 KiB blocks.
//!
//! Times reported are *simulated seconds*; the shapes (who wins, by what
//! factor, where the crossovers fall) are the reproduction target, not
//! the absolute values of the authors' 1996 testbed.

#![warn(missing_docs)]

use tapejoin::{JoinMethod, JoinStats, SystemConfig, TertiaryJoin};
use tapejoin_rel::{JoinWorkload, RelationSpec, WorkloadBuilder};

/// Default experiment seed (any fixed value; determinism is what matters).
pub const SEED: u64 = 0x1997_0407;

/// Every method the experiment binaries measure — the full Table 2 set,
/// spelled out so that dropping a method from the experiments is a
/// visible diff (and a tapejoin-lint L5 error, which cross-checks this
/// list against the `JoinMethod` enum).
pub const BENCH_METHODS: [JoinMethod; 9] = [
    JoinMethod::DtNb,
    JoinMethod::CdtNbMb,
    JoinMethod::CdtNbDb,
    JoinMethod::DtGh,
    JoinMethod::CdtGh,
    JoinMethod::CttGh,
    JoinMethod::TtGh,
    JoinMethod::Dhh,
    JoinMethod::Cap,
];

/// The paper's experimental-system configuration: 64 KiB blocks, two
/// DLT-4000 drives, two disks at 2 MB/s each (`X_D = 2 X_T` for the
/// 25%-compressible base case), with per-request disk positioning
/// overhead enabled (it is a measured system, not the analytic model).
pub fn paper_system(memory_mb: f64, disk_mb: f64) -> SystemConfig {
    let probe = SystemConfig::new(0, 0);
    let m = probe.mb_to_blocks(memory_mb).max(2);
    let d = probe.mb_to_blocks(disk_mb);
    SystemConfig::new(m, d).disk_overhead(true)
}

/// Generate the paper's synthetic workload: `R` with unique keys, `S`
/// with uniformly distributed foreign keys, both `compressibility`-
/// compressible (0.25 is the base case; 0.0/0.5 are Experiment 3's
/// slower/faster tape runs).
pub fn paper_workload(
    cfg: &SystemConfig,
    r_mb: f64,
    s_mb: f64,
    compressibility: f64,
) -> JoinWorkload {
    WorkloadBuilder::new(SEED)
        .r(RelationSpec::new("R", cfg.mb_to_blocks(r_mb)).compressibility(compressibility))
        .s(RelationSpec::new("S", cfg.mb_to_blocks(s_mb)).compressibility(compressibility))
        .build()
}

/// Run one join, panicking with context on infeasibility (experiment
/// configurations are chosen to be feasible).
pub fn run(cfg: &SystemConfig, method: JoinMethod, workload: &JoinWorkload) -> JoinStats {
    TertiaryJoin::new(cfg.clone())
        .run(method, workload)
        // lint:allow(L3, experiment harness: configs are chosen feasible, so abort with context is the contract)
        .unwrap_or_else(|e| panic!("{method} failed: {e}"))
}

/// Simple fixed-width table printer.
pub struct TablePrinter {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    csv: bool,
}

impl TablePrinter {
    /// Create a printer with the given column headers. `csv` switches to
    /// comma-separated output.
    pub fn new(headers: &[&str], csv: bool) -> Self {
        TablePrinter {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            csv,
        }
    }

    /// Append one row (stringify the cells yourself).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Print the table to stdout.
    pub fn print(&self) {
        if self.csv {
            println!("{}", self.headers.join(","));
            for row in &self.rows {
                println!("{}", row.join(","));
            }
            return;
        }
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", line(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }
}

/// Shared driver for Figures 1–3 (analytic relative response curves).
pub mod figures_123 {
    use super::*;
    use tapejoin::cost::{relative_response, CostParams};

    /// Memory size (blocks) used for the charts; only the *ratios*
    /// `|R|/M` and `D/M = 32` matter (the relative response is scale-free
    /// under the transfer-only model).
    pub const M: u64 = 200;

    /// Print the relative-response table for the given `|R|/M` values.
    pub fn run(title: &str, ratios: &[f64]) {
        let mut headers = vec!["|R|/M".to_string()];
        headers.extend(BENCH_METHODS.iter().map(|m| m.abbrev().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = TablePrinter::new(&header_refs, csv_flag());

        println!("{title}: Expected Response Time Relative to Tape Read Time of S");
        println!("(analytic model; |S| = 10|R|, D = 32M, X_D = 2X_T)\n");

        let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); BENCH_METHODS.len()];
        for &x in ratios {
            let r_blocks = ((M as f64) * x).round() as u64;
            let p = CostParams {
                r_blocks,
                s_blocks: 10 * r_blocks,
                memory: M,
                disk: 32 * M,
                block_bytes: 64 * 1024,
                tape_rate: 2.0e6,
                disk_rate: 4.0e6,
                r_tuples_per_block: 4,
                tape_reposition_s: 0.0, // pure transfer-only, as in §5.3
            };
            let mut cells = vec![format!("{x:.1}")];
            for (mi, &method) in BENCH_METHODS.iter().enumerate() {
                cells.push(match relative_response(method, &p) {
                    Ok(rel) => {
                        curves[mi].push((x, rel));
                        format!("{rel:.2}")
                    }
                    Err(_) => "-".to_string(),
                });
            }
            table.row(cells);
        }
        table.print();
        if !csv_flag() {
            println!("\nRelative response vs |R|/M:\n");
            let mut chart = crate::chart::AsciiChart::new(56, 14);
            for (mi, method) in BENCH_METHODS.iter().enumerate() {
                if !curves[mi].is_empty() {
                    chart = chart.series(method.abbrev(), curves[mi].clone());
                }
            }
            print!("{}", chart.render());
        }
    }
}

/// Shared driver for Figures 9–11 (relative join overhead at three tape
/// speeds).
pub mod overhead_figure {
    use super::*;
    use tapejoin::optimum_join_time;

    /// Print the overhead table for data of the given compressibility.
    pub fn run(title: &str, compressibility: f64) {
        let methods = [
            JoinMethod::DtNb,
            JoinMethod::CdtNbMb,
            JoinMethod::CdtNbDb,
            JoinMethod::DtGh,
            JoinMethod::CdtGh,
        ];
        let mut headers = vec!["M/|R|".to_string()];
        headers.extend(methods.iter().map(|m| m.abbrev().to_string()));
        let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
        let mut table = TablePrinter::new(&header_refs, csv_flag());

        println!("{title}");
        println!(
            "(|S| = 1000 MB, |R| = 18 MB, D = 50 MB, {}% compressible data -> X_T = {:.1} MB/s)\n",
            (compressibility * 100.0) as u32,
            SystemConfig::new(2, 2).tape_rate(compressibility) / 1e6,
        );

        let mut curves: Vec<Vec<(f64, f64)>> = vec![Vec::new(); methods.len()];
        for frac in [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0] {
            let cfg = paper_system(18.0 * frac, 50.0);
            let workload = paper_workload(&cfg, 18.0, 1000.0, compressibility);
            let optimum = optimum_join_time(&cfg, &workload);
            let mut cells = vec![format!("{frac:.1}")];
            for (mi, &method) in methods.iter().enumerate() {
                let cell = match TertiaryJoin::new(cfg.clone()).run(method, &workload) {
                    Ok(stats) => {
                        assert_eq!(stats.output.pairs, workload.expected_pairs);
                        let o = stats.overhead_vs(optimum);
                        curves[mi].push((frac, o * 100.0));
                        pct(o)
                    }
                    Err(_) => "-".to_string(),
                };
                cells.push(cell);
            }
            table.row(cells);
        }
        table.print();
        if !csv_flag() {
            println!("\nRelative join overhead (%) vs M/|R|:\n");
            let mut chart = crate::chart::AsciiChart::new(56, 14);
            for (mi, method) in methods.iter().enumerate() {
                if !curves[mi].is_empty() {
                    chart = chart.series(method.abbrev(), curves[mi].clone());
                }
            }
            print!("{}", chart.render());
        }
    }
}

/// Minimal ASCII line charts, so the figure binaries can show the
/// paper's *curves* and not just their tables.
pub mod chart {
    /// One plotted series: a label and `(x, y)` points (missing points —
    /// e.g. infeasible configurations — are simply absent).
    pub struct Series {
        /// Legend label.
        pub label: String,
        /// Data points.
        pub points: Vec<(f64, f64)>,
    }

    /// A fixed-size ASCII chart canvas.
    pub struct AsciiChart {
        width: usize,
        height: usize,
        series: Vec<Series>,
    }

    const MARKS: [char; 7] = ['*', '+', 'o', 'x', '#', '@', '%'];

    impl AsciiChart {
        /// Create a canvas of `width` columns by `height` rows (plot
        /// area, excluding axis labels).
        pub fn new(width: usize, height: usize) -> Self {
            assert!(width >= 8 && height >= 4, "canvas too small");
            AsciiChart {
                width,
                height,
                series: Vec::new(),
            }
        }

        /// Add a series (at most 7; marks repeat beyond that).
        pub fn series(mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
            self.series.push(Series {
                label: label.into(),
                points,
            });
            self
        }

        /// Render the chart with axes and a legend.
        pub fn render(&self) -> String {
            let pts: Vec<(f64, f64)> = self
                .series
                .iter()
                .flat_map(|s| s.points.iter().copied())
                .collect();
            if pts.is_empty() {
                return "(no data)\n".to_string();
            }
            let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
            let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
            for (x, y) in &pts {
                x_min = x_min.min(*x);
                x_max = x_max.max(*x);
                y_min = y_min.min(*y);
                y_max = y_max.max(*y);
            }
            if (x_max - x_min).abs() < f64::EPSILON {
                x_max = x_min + 1.0;
            }
            if (y_max - y_min).abs() < f64::EPSILON {
                y_max = y_min + 1.0;
            }
            let mut grid = vec![vec![' '; self.width]; self.height];
            for (si, s) in self.series.iter().enumerate() {
                let mark = MARKS[si % MARKS.len()];
                for (x, y) in &s.points {
                    let cx =
                        ((x - x_min) / (x_max - x_min) * (self.width - 1) as f64).round() as usize;
                    let cy =
                        ((y - y_min) / (y_max - y_min) * (self.height - 1) as f64).round() as usize;
                    let row = self.height - 1 - cy;
                    // Later series overwrite earlier ones on collisions.
                    grid[row][cx] = mark;
                }
            }
            let mut out = String::new();
            for (i, row) in grid.iter().enumerate() {
                let y_here = y_max - (y_max - y_min) * i as f64 / (self.height - 1) as f64;
                out.push_str(&format!("{y_here:>10.1} |"));
                out.extend(row.iter());
                out.push('\n');
            }
            out.push_str(&format!("{:>10} +{}\n", "", "-".repeat(self.width)));
            out.push_str(&format!(
                "{:>10}  {:<w$.1}{:>r$.1}\n",
                "",
                x_min,
                x_max,
                w = self.width / 2,
                r = self.width - self.width / 2,
            ));
            for (si, s) in self.series.iter().enumerate() {
                out.push_str(&format!(
                    "{:>12} {}  {}\n",
                    "",
                    MARKS[si % MARKS.len()],
                    s.label
                ));
            }
            out
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn renders_extremes_at_the_corners() {
            let chart = AsciiChart::new(20, 5).series("s", vec![(0.0, 0.0), (10.0, 100.0)]);
            let out = chart.render();
            let lines: Vec<&str> = out.lines().collect();
            // Max y on the top row, min y on the bottom plot row.
            assert!(lines[0].ends_with('*'), "top-right mark missing: {out}");
            assert!(lines[4].contains('*'), "bottom-left mark missing: {out}");
            assert!(out.contains("100.0"));
            assert!(out.contains("s"));
        }

        #[test]
        fn multiple_series_use_distinct_marks() {
            let out = AsciiChart::new(16, 4)
                .series("a", vec![(0.0, 0.0)])
                .series("b", vec![(1.0, 1.0)])
                .render();
            assert!(out.contains('*') && out.contains('+'));
        }

        #[test]
        fn empty_chart_is_graceful() {
            let out = AsciiChart::new(16, 4).render();
            assert_eq!(out, "(no data)\n");
        }
    }
}

/// `true` when `--csv` was passed on the command line.
pub fn csv_flag() -> bool {
    std::env::args().any(|a| a == "--csv")
}

/// Format seconds with no decimals (paper style).
pub fn secs(s: f64) -> String {
    format!("{s:.0}")
}

/// Format a ratio with one decimal.
pub fn ratio(r: f64) -> String {
    format!("{r:.1}")
}

/// Format a percentage.
pub fn pct(p: f64) -> String {
    format!("{:.0}%", p * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_system_matches_experiment_3_shape() {
        let cfg = paper_system(1.8, 50.0);
        // 1.8 MB of memory in 64 KiB blocks, rounded up.
        assert_eq!(cfg.memory_blocks, 28);
        assert_eq!(cfg.disk_blocks, 763);
        assert!(cfg.disk_overhead);
    }

    #[test]
    fn paper_workload_is_deterministic_and_sized() {
        let cfg = paper_system(4.0, 50.0);
        let a = paper_workload(&cfg, 18.0, 100.0, 0.25);
        let b = paper_workload(&cfg, 18.0, 100.0, 0.25);
        assert_eq!(a.expected_pairs, b.expected_pairs);
        assert_eq!(a.r.block_count(), cfg.mb_to_blocks(18.0));
        assert_eq!(a.s.compressibility().to_bits(), 0.25f64.to_bits());
    }

    #[test]
    fn table_printer_pads_and_aligns() {
        let mut t = TablePrinter::new(&["a", "bb"], false);
        t.row(vec!["1".into(), "2".into()]);
        t.row(vec!["10".into(), "20".into()]);
        // No panic; width logic exercised via print (writes to stdout).
        t.print();
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_printer_rejects_ragged_rows() {
        let mut t = TablePrinter::new(&["a"], false);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(12.4), "12");
        assert_eq!(ratio(6.94), "6.9");
        assert_eq!(pct(0.4), "40%");
    }
}
