//! Host-machine microbenchmarks for the implementation itself
//! (complementing the virtual-time experiment binaries, which measure
//! the *simulated* system).
//!
//! Groups:
//! * `sim` — discrete-event kernel throughput (task spawn/join, timers,
//!   channel handoffs, semaphore round-trips);
//! * `rel` — block codec and workload generation;
//! * `hash` — grace partitioning throughput;
//! * `join` — end-to-end simulated joins per host-second.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};

use tapejoin::hash::{GracePlan, Partitioner};
use tapejoin::{JoinMethod, SystemConfig, TertiaryJoin};
use tapejoin_rel::{Block, RelationSpec, Tuple, WorkloadBuilder};
use tapejoin_sim::sync::{channel, Semaphore};
use tapejoin_sim::{sleep, spawn, Duration, Simulation};

fn bench_sim_kernel(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim");

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("timers_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.run(async {
                for i in 0..10_000u64 {
                    sleep(Duration::from_nanos(i % 97)).await;
                }
            });
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("spawn_join_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            let total = sim.run(async {
                let mut acc = 0u64;
                for i in 0..10_000u64 {
                    acc += spawn(async move { i }).join().await;
                }
                acc
            });
            assert_eq!(total, 10_000 * 9_999 / 2);
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("channel_handoff_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.run(async {
                let (tx, mut rx) = channel::<u64>(8);
                spawn(async move {
                    for i in 0..10_000u64 {
                        tx.send(i).await.unwrap();
                    }
                });
                let mut n = 0u64;
                while rx.recv().await.is_some() {
                    n += 1;
                }
                assert_eq!(n, 10_000);
            });
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("semaphore_roundtrip_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.run(async {
                let sem = Semaphore::new(4);
                for _ in 0..10_000 {
                    let p = sem.acquire(2).await;
                    drop(p);
                }
            });
        })
    });

    g.finish();
}

fn bench_relation(c: &mut Criterion) {
    let mut g = c.benchmark_group("rel");

    let block = Block::new((0..64).map(|i| Tuple::new(i * 2, i)).collect());
    let bytes = block.to_bytes();
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("block_encode_64t", |b| b.iter(|| block.to_bytes()));
    g.bench_function("block_decode_64t", |b| {
        b.iter(|| Block::from_bytes(&bytes).unwrap())
    });

    g.throughput(Throughput::Elements(4096 * 4));
    g.bench_function("workload_gen_4k_blocks", |b| {
        b.iter(|| {
            WorkloadBuilder::new(1)
                .r(RelationSpec::new("R", 1024))
                .s(RelationSpec::new("S", 3072))
                .build()
        })
    });

    g.finish();
}

fn bench_partitioner(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    let plan = GracePlan::derive(1024, 64, 4).unwrap();
    let tuples: Vec<Tuple> = (0..100_000u64).map(|i| Tuple::new(i * 2, i)).collect();
    g.throughput(Throughput::Elements(tuples.len() as u64));
    g.bench_function("partition_100k_tuples", |b| {
        b.iter_batched(
            || Partitioner::new(plan, 42),
            |mut p| {
                let mut out = Vec::new();
                for &t in &tuples {
                    p.push(t, &mut out);
                    out.clear();
                }
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut g = c.benchmark_group("join");
    g.sample_size(10);
    let workload = WorkloadBuilder::new(5)
        .r(RelationSpec::new("R", 128))
        .s(RelationSpec::new("S", 512))
        .build();
    for method in [JoinMethod::CdtGh, JoinMethod::CttGh, JoinMethod::DtNb] {
        g.bench_function(format!("e2e_{}", method.abbrev()), |b| {
            b.iter(|| {
                let cfg = SystemConfig::new(24, 400);
                TertiaryJoin::new(cfg).run(method, &workload).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_substrates(c: &mut Criterion) {
    use std::rc::Rc;
    use tapejoin_buffer::{DiskBufKind, DiskBuffer};
    use tapejoin_disk::{ArrayMode, DiskArray, DiskModel, SpaceManager};
    use tapejoin_rel::Block;
    use tapejoin_tape::{TapeDrive, TapeDriveModel, TapeMedia};

    let mut g = c.benchmark_group("substrate");

    g.throughput(Throughput::Elements(4096));
    g.bench_function("tape_scan_4k_blocks", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.run(async {
                let w = WorkloadBuilder::new(1)
                    .r(RelationSpec::new("R", 4096).tuples_per_block(1))
                    .build();
                let tape = TapeMedia::blank("t", 4096);
                tape.load_relation(&w.r);
                let drive = TapeDrive::new("d", TapeDriveModel::ideal(1e9), 1 << 16);
                drive.mount(tape);
                let mut pos = 0;
                while pos < 4096 {
                    let blocks = drive.read(pos, 128).await;
                    pos += blocks.len() as u64;
                }
            });
        })
    });

    g.throughput(Throughput::Elements(2048));
    g.bench_function("diskbuf_pipeline_2k_blocks", |b| {
        b.iter(|| {
            let mut sim = Simulation::new();
            sim.run(async {
                let array = DiskArray::new(DiskModel::ideal(1e9), 2, 1 << 16, ArrayMode::Aggregate);
                let space = SpaceManager::new(2, 64);
                let buf = DiskBuffer::new(DiskBufKind::Interleaved, 64, array, space);
                let producer = {
                    let buf = buf.clone();
                    spawn(async move {
                        let block = Rc::new(Block::new(vec![tapejoin_rel::Tuple::new(1, 1)]));
                        let mut sent = Vec::new();
                        for i in 0..2048u64 {
                            let slots = buf.write_batch(i / 64, &[Rc::clone(&block)]).await;
                            sent.push(slots);
                            if sent.len() >= 32 {
                                for s in sent.drain(..) {
                                    buf.free(&s);
                                }
                            }
                        }
                        for s in sent {
                            buf.free(&s);
                        }
                    })
                };
                producer.join().await;
            });
        })
    });

    g.throughput(Throughput::Elements(10_000));
    g.bench_function("space_manager_10k_cycles", |b| {
        b.iter(|| {
            let sm = SpaceManager::new(4, 256);
            for _ in 0..10_000 {
                let a = sm.allocate(16).unwrap();
                sm.release(&a);
            }
        })
    });

    g.finish();
}

criterion_group!(
    benches,
    bench_sim_kernel,
    bench_relation,
    bench_partitioner,
    bench_end_to_end,
    bench_substrates
);
criterion_main!(benches);
