//! Property tests for the disk substrate: allocation soundness under
//! arbitrary allocate/release interleavings.

use proptest::prelude::*;
use std::collections::HashSet;
use tapejoin_disk::{DiskAddr, SpaceManager};

/// An allocate (blocks) or release (fraction of a previous allocation).
#[derive(Clone, Debug)]
enum Op {
    Allocate(u64),
    Release(prop::sample::Index),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..16).prop_map(Op::Allocate),
        any::<prop::sample::Index>().prop_map(Op::Release),
    ]
}

proptest! {
    /// No address is ever live twice; in-use accounting matches the live
    /// set; quota is never exceeded.
    #[test]
    fn allocator_soundness(
        disks in 1u32..5,
        quota in 1u64..200,
        ops in proptest::collection::vec(arb_op(), 1..60),
    ) {
        let sm = SpaceManager::new(disks, quota);
        let mut live: Vec<Vec<DiskAddr>> = Vec::new();
        let mut live_set: HashSet<DiskAddr> = HashSet::new();
        for op in ops {
            match op {
                Op::Allocate(n) => match sm.allocate(n) {
                    Ok(addrs) => {
                        prop_assert_eq!(addrs.len() as u64, n);
                        for a in &addrs {
                            prop_assert!(a.disk < disks, "address on nonexistent disk");
                            prop_assert!(live_set.insert(*a), "double-allocated {a:?}");
                        }
                        live.push(addrs);
                    }
                    Err(e) => {
                        // Refusal must be justified by the quota.
                        prop_assert!(live_set.len() as u64 + n > quota, "spurious refusal: {e}");
                    }
                },
                Op::Release(idx) => {
                    if !live.is_empty() {
                        let batch = live.swap_remove(idx.index(live.len()));
                        for a in &batch {
                            live_set.remove(a);
                        }
                        sm.release(&batch);
                    }
                }
            }
            prop_assert_eq!(sm.in_use(), live_set.len() as u64);
            prop_assert!(sm.in_use() <= quota);
            prop_assert!(sm.peak_in_use() <= quota);
        }
    }

    /// Freshly-allocated addresses are balanced: with an even quota split
    /// and a single large allocation, per-disk counts differ by at most
    /// one.
    #[test]
    fn striping_balances_disks(disks in 2u32..6, per_disk in 1u64..30) {
        let quota = disks as u64 * per_disk;
        let sm = SpaceManager::new(disks, quota);
        let addrs = sm.allocate(quota).unwrap();
        let mut counts = vec![0u64; disks as usize];
        for a in &addrs {
            counts[a.disk as usize] += 1;
        }
        let min = *counts.iter().min().unwrap();
        let max = *counts.iter().max().unwrap();
        prop_assert!(max - min <= 1, "unbalanced striping: {counts:?}");
    }
}
