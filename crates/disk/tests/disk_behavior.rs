//! Behavioural tests for the disk substrate: array modes, contention,
//! and request accounting.

use std::rc::Rc;
use tapejoin_disk::{ArrayMode, DiskArray, DiskModel, SpaceManager};
use tapejoin_rel::{Block, BlockRef, Tuple};
use tapejoin_sim::{now, spawn, Simulation};

const BLOCK: u64 = 1 << 16;

fn blocks(n: u64) -> Vec<BlockRef> {
    (0..n)
        .map(|i| Rc::new(Block::new(vec![Tuple::new(i, i)])) as BlockRef)
        .collect()
}

#[test]
fn concurrent_requests_share_the_aggregate_server() {
    let mut sim = Simulation::new();
    let t = sim.run(async {
        let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::Aggregate);
        let sm = SpaceManager::new(2, 64);
        let a = sm.allocate(16).unwrap();
        let b = sm.allocate(16).unwrap();
        let (arr1, arr2) = (arr.clone(), arr.clone());
        let ha = spawn(async move { arr1.write(&a, &blocks(16)).await });
        let hb = spawn(async move { arr2.write(&b, &blocks(16)).await });
        ha.join().await;
        hb.join().await;
        now().as_secs_f64()
    });
    // 32 blocks over a 2 MB/s aggregate: serialized, not parallel.
    assert!((t - 32.0 * BLOCK as f64 / 2e6).abs() < 1e-6);
}

#[test]
fn per_disk_mode_lets_disjoint_disks_proceed_in_parallel() {
    let mut sim = Simulation::new();
    let t = sim.run(async {
        let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::PerDisk);
        let a: Vec<_> = (0..16)
            .map(|i| tapejoin_disk::DiskAddr { disk: 0, lba: i })
            .collect();
        let b: Vec<_> = (0..16)
            .map(|i| tapejoin_disk::DiskAddr { disk: 1, lba: i })
            .collect();
        let (arr1, arr2) = (arr.clone(), arr.clone());
        let ha = spawn(async move { arr1.write(&a, &blocks(16)).await });
        let hb = spawn(async move { arr2.write(&b, &blocks(16)).await });
        ha.join().await;
        hb.join().await;
        now().as_secs_f64()
    });
    // Disk 0 and disk 1 work simultaneously.
    assert!((t - 16.0 * BLOCK as f64 / 1e6).abs() < 1e-6);
}

#[test]
fn request_counters_track_logical_requests() {
    let mut sim = Simulation::new();
    sim.run(async {
        let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
        let sm = SpaceManager::new(1, 64);
        let addrs = sm.allocate(12).unwrap();
        let bs = blocks(12);
        for chunk in addrs.chunks(4).zip(bs.chunks(4)) {
            arr.write(chunk.0, chunk.1).await;
        }
        arr.read(&addrs).await;
        let st = arr.stats();
        assert_eq!(st.write_requests, 3);
        assert_eq!(st.read_requests, 1);
        assert_eq!(st.blocks_written, 12);
        assert_eq!(st.blocks_read, 12);
    });
}

#[test]
fn empty_requests_cost_nothing() {
    let mut sim = Simulation::new();
    sim.run(async {
        let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
        arr.write(&[], &[]).await;
        let got = arr.read(&[]).await;
        assert!(got.is_empty());
        assert_eq!(now().as_nanos(), 0);
        assert_eq!(arr.stats().traffic(), 0);
    });
}

#[test]
fn aggregate_rate_reflects_disk_count() {
    let arr = DiskArray::new(DiskModel::ideal(2e6), 3, BLOCK, ArrayMode::Aggregate);
    assert!((arr.aggregate_rate() - 6e6).abs() < 1.0);
    assert_eq!(arr.disks(), 3);
    assert_eq!(arr.block_bytes(), BLOCK);
}

#[test]
fn fireball_preset_is_era_plausible() {
    let m = DiskModel::quantum_fireball();
    assert!(m.transfer_rate > 1e6 && m.transfer_rate < 1e7);
    assert!(m.per_request_overhead);
    assert!(m.request_overhead().as_secs_f64() > 0.01);
}
