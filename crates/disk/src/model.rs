//! Disk performance model.

use tapejoin_sim::Duration;

/// Parameters of a single disk's performance model.
#[derive(Clone, Debug)]
pub struct DiskModel {
    /// Model name for diagnostics.
    pub name: &'static str,
    /// Sustained transfer rate, bytes/second.
    pub transfer_rate: f64,
    /// Average seek time, charged once per request when
    /// `per_request_overhead` is set.
    pub avg_seek: Duration,
    /// Average rotational latency, charged once per request when
    /// `per_request_overhead` is set.
    pub avg_rotational: Duration,
    /// Whether to charge seek + rotational latency per request. The
    /// paper's transfer-only cost model corresponds to `false`; the
    /// experimental system (Sections 7–9) corresponds to `true`.
    pub per_request_overhead: bool,
}

impl DiskModel {
    /// A mid-1990s workstation disk in the spirit of the paper's Quantum
    /// Fireball 1080: ~3.5 MB/s sustained, ~12 ms seek, 5400 rpm.
    pub fn quantum_fireball() -> Self {
        DiskModel {
            name: "Quantum Fireball 1080",
            transfer_rate: 3.5e6,
            avg_seek: Duration::from_millis(12),
            avg_rotational: Duration::from_micros(5_600),
            per_request_overhead: true,
        }
    }

    /// Transfer-only disk: exact rate, no positioning costs (matches the
    /// analytic cost model).
    pub fn ideal(rate_bytes_per_sec: f64) -> Self {
        DiskModel {
            name: "ideal",
            transfer_rate: rate_bytes_per_sec,
            avg_seek: Duration::ZERO,
            avg_rotational: Duration::ZERO,
            per_request_overhead: false,
        }
    }

    /// Builder-style: set the sustained transfer rate.
    pub fn with_rate(mut self, rate: f64) -> Self {
        assert!(rate > 0.0, "disk rate must be positive");
        self.transfer_rate = rate;
        self
    }

    /// Builder-style: enable/disable per-request positioning overhead.
    pub fn with_overhead(mut self, enabled: bool) -> Self {
        self.per_request_overhead = enabled;
        self
    }

    /// Positioning cost of one request (zero when overhead is disabled).
    pub fn request_overhead(&self) -> Duration {
        if self.per_request_overhead {
            self.avg_seek + self.avg_rotational
        } else {
            Duration::ZERO
        }
    }

    /// Service time for one request of `bytes` at `rate_multiplier` times
    /// this disk's rate (aggregate-server mode passes the array fan-out).
    pub fn service_time(&self, bytes: u64, rate_multiplier: f64) -> Duration {
        self.request_overhead()
            + tapejoin_sim::transfer_time(bytes, self.transfer_rate * rate_multiplier)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_disk_is_transfer_only() {
        let m = DiskModel::ideal(2e6);
        assert_eq!(m.request_overhead(), Duration::ZERO);
        assert_eq!(m.service_time(2_000_000, 1.0), Duration::from_secs(1));
    }

    #[test]
    fn overhead_matters_for_small_requests_only() {
        let m = DiskModel::quantum_fireball();
        let small = m.service_time(8 * 1024, 1.0);
        let large = m.service_time(4 * 1024 * 1024, 1.0);
        // For a small request, positioning dominates transfer.
        let overhead = m.request_overhead().as_secs_f64();
        assert!(overhead / small.as_secs_f64() > 0.8);
        // For a large (>= 30-block) request it is negligible (< 2%),
        // which is the paper's justification for the transfer-only model.
        assert!(overhead / large.as_secs_f64() < 0.02);
    }

    #[test]
    fn rate_multiplier_scales_transfer_not_overhead() {
        let m = DiskModel::quantum_fireball();
        let t1 = m.service_time(3_500_000, 1.0);
        let t2 = m.service_time(3_500_000, 2.0);
        let o = m.request_overhead();
        assert!((t1 - o).as_secs_f64() / (t2 - o).as_secs_f64() - 2.0 < 1e-9);
    }
}
