//! Disk space management under the paper's `D`-block budget.
//!
//! Every join method gets a [`SpaceManager`] over the array: allocations
//! return explicit per-disk addresses (so placement is controllable, per
//! Section 4), frees recycle addresses, and the total in use can never
//! exceed `D`. Peak usage is tracked to validate Table 2 / Figure 6.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A block address on the array: disk index + logical block address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DiskAddr {
    /// Which disk.
    pub disk: u32,
    /// Logical block address within that disk.
    pub lba: u64,
}

/// Error: an allocation would exceed the `D`-block quota.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DiskSpaceExhausted {
    /// Blocks requested.
    pub requested: u64,
    /// Blocks free under the quota.
    pub free: u64,
}

impl fmt::Display for DiskSpaceExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "disk space exhausted: requested {} blocks, {} free under quota",
            self.requested, self.free
        )
    }
}

impl std::error::Error for DiskSpaceExhausted {}

struct SpaceInner {
    quota: u64,
    per_disk_quota: Vec<u64>,
    /// Free lists per disk; recycled addresses are reused LIFO.
    free_lists: Vec<Vec<u64>>,
    /// First LBA this manager owns on each disk.
    base_lba: u64,
    /// High-water mark of fresh LBAs per disk.
    next_lba: Vec<u64>,
    in_use: u64,
    peak_in_use: u64,
    /// Next disk for round-robin placement.
    cursor: usize,
}

/// Allocator for the join's `D`-block disk budget, striping allocations
/// round-robin across disks. Cheap to clone (shared handle).
///
/// # Examples
///
/// ```
/// use tapejoin_disk::SpaceManager;
///
/// let space = SpaceManager::new(2, 10); // two disks, D = 10 blocks
/// let grant = space.allocate(10).unwrap();
/// assert!(space.allocate(1).is_err()); // quota enforced
/// space.release(&grant[..4]);
/// assert_eq!(space.free(), 4);
/// ```
#[derive(Clone)]
pub struct SpaceManager {
    // lint:allow(L9, space-manager handle local to one member's executor)
    inner: Rc<RefCell<SpaceInner>>,
}

impl SpaceManager {
    /// Create a manager for `disks` disks sharing a total quota of
    /// `quota_blocks`, split evenly (the paper: "`D` blocks of disk space
    /// … evenly divided on the `n` disks").
    pub fn new(disks: u32, quota_blocks: u64) -> Self {
        Self::with_base(disks, quota_blocks, 0)
    }

    /// Like [`SpaceManager::new`], but allocating LBAs starting at
    /// `base_lba` on every disk. Two managers over the same array must
    /// use disjoint LBA ranges (e.g. the join's `D`-quota region and a
    /// separate output partition).
    pub fn with_base(disks: u32, quota_blocks: u64, base_lba: u64) -> Self {
        assert!(disks > 0, "need at least one disk");
        let n = disks as u64;
        // Even split; the first (quota % n) disks take one extra block.
        let per_disk_quota: Vec<u64> = (0..n)
            .map(|i| quota_blocks / n + u64::from(i < quota_blocks % n))
            .collect();
        SpaceManager {
            inner: Rc::new(RefCell::new(SpaceInner {
                quota: quota_blocks,
                per_disk_quota,
                free_lists: vec![Vec::new(); disks as usize],
                base_lba,
                next_lba: vec![base_lba; disks as usize],
                in_use: 0,
                peak_in_use: 0,
                cursor: 0,
            })),
        }
    }

    /// Total quota in blocks.
    pub fn quota(&self) -> u64 {
        self.inner.borrow().quota
    }

    /// Blocks currently allocated.
    pub fn in_use(&self) -> u64 {
        self.inner.borrow().in_use
    }

    /// Blocks free under the quota. Saturating: after a
    /// [`SpaceManager::reduce_quota`] that undercuts live allocations,
    /// free space is zero, not negative.
    pub fn free(&self) -> u64 {
        let inner = self.inner.borrow();
        inner.quota.saturating_sub(inner.in_use)
    }

    /// Highest simultaneous allocation seen (validates Table 2 / Fig. 6).
    pub fn peak_in_use(&self) -> u64 {
        self.inner.borrow().peak_in_use
    }

    /// Allocate `count` blocks, striped round-robin across disks.
    pub fn allocate(&self, count: u64) -> Result<Vec<DiskAddr>, DiskSpaceExhausted> {
        let mut inner = self.inner.borrow_mut();
        if inner.in_use + count > inner.quota {
            return Err(DiskSpaceExhausted {
                requested: count,
                free: inner.quota.saturating_sub(inner.in_use),
            });
        }
        let disks = inner.free_lists.len();
        let mut out = Vec::with_capacity(count as usize);
        let mut cursor = inner.cursor;
        for _ in 0..count {
            // Round-robin, skipping disks that are at their per-disk quota.
            let mut placed = false;
            for probe in 0..disks {
                let d = (cursor + probe) % disks;
                let used_on_d =
                    inner.next_lba[d] - inner.base_lba - inner.free_lists[d].len() as u64;
                if used_on_d < inner.per_disk_quota[d] {
                    let lba = inner.free_lists[d].pop().unwrap_or_else(|| {
                        let lba = inner.next_lba[d];
                        inner.next_lba[d] += 1;
                        lba
                    });
                    out.push(DiskAddr {
                        disk: d as u32,
                        lba,
                    });
                    cursor = (d + 1) % disks;
                    placed = true;
                    break;
                }
            }
            assert!(placed, "quota accounting out of sync with per-disk quotas");
        }
        inner.cursor = cursor;
        inner.in_use += count;
        inner.peak_in_use = inner.peak_in_use.max(inner.in_use);
        Ok(out)
    }

    /// Shrink the quota to `new_quota` blocks — the degraded-mode budget
    /// after losing disk capacity. The per-disk split is rescaled
    /// proportionally; blocks already allocated stay allocated even if
    /// they now exceed the new quota (callers release salvage first, then
    /// shrink). Growing the quota is rejected: a degraded array never
    /// recovers capacity without a rebuild, which builds a fresh manager.
    pub fn reduce_quota(&self, new_quota: u64) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            new_quota <= inner.quota,
            "reduce_quota cannot grow the budget ({} -> {new_quota})",
            inner.quota
        );
        let n = inner.per_disk_quota.len() as u64;
        inner.quota = new_quota;
        inner.per_disk_quota = (0..n)
            .map(|i| new_quota / n + u64::from(i < new_quota % n))
            .collect();
    }

    /// Return addresses to the pool for reuse.
    pub fn release(&self, addrs: &[DiskAddr]) {
        let mut inner = self.inner.borrow_mut();
        assert!(
            inner.in_use >= addrs.len() as u64,
            "releasing more blocks than allocated"
        );
        for a in addrs {
            inner.free_lists[a.disk as usize].push(a.lba);
        }
        inner.in_use -= addrs.len() as u64;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quota_is_enforced() {
        let sm = SpaceManager::new(2, 10);
        let a = sm.allocate(10).unwrap();
        assert_eq!(a.len(), 10);
        let err = sm.allocate(1).unwrap_err();
        assert_eq!(
            err,
            DiskSpaceExhausted {
                requested: 1,
                free: 0
            }
        );
        sm.release(&a[..4]);
        assert_eq!(sm.free(), 4);
        assert!(sm.allocate(4).is_ok());
    }

    #[test]
    fn allocations_are_balanced_across_disks() {
        let sm = SpaceManager::new(4, 100);
        let addrs = sm.allocate(80).unwrap();
        let mut per_disk = [0u32; 4];
        for a in &addrs {
            per_disk[a.disk as usize] += 1;
        }
        assert_eq!(per_disk, [20, 20, 20, 20]);
    }

    #[test]
    fn released_addresses_are_reused() {
        let sm = SpaceManager::new(1, 4);
        let a = sm.allocate(4).unwrap();
        sm.release(&a);
        let b = sm.allocate(4).unwrap();
        let mut la: Vec<u64> = a.iter().map(|x| x.lba).collect();
        let mut lb: Vec<u64> = b.iter().map(|x| x.lba).collect();
        la.sort_unstable();
        lb.sort_unstable();
        assert_eq!(la, lb, "recycled allocations must reuse freed LBAs");
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let sm = SpaceManager::new(2, 10);
        let a = sm.allocate(7).unwrap();
        sm.release(&a);
        let _b = sm.allocate(3).unwrap();
        assert_eq!(sm.peak_in_use(), 7);
        assert_eq!(sm.in_use(), 3);
    }

    #[test]
    fn uneven_quota_split_covers_remainder() {
        // 7 blocks over 3 disks: 3 + 2 + 2.
        let sm = SpaceManager::new(3, 7);
        let addrs = sm.allocate(7).unwrap();
        let mut per_disk = [0u32; 3];
        for a in &addrs {
            per_disk[a.disk as usize] += 1;
        }
        assert_eq!(per_disk.iter().sum::<u32>(), 7);
        assert!(per_disk.iter().all(|&c| c >= 2));
    }

    #[test]
    fn base_offset_partitions_the_lba_space() {
        let low = SpaceManager::new(2, 100);
        let high = SpaceManager::with_base(2, 100, 1 << 40);
        let a = low.allocate(100).unwrap();
        let b = high.allocate(100).unwrap();
        let max_low = a.iter().map(|x| x.lba).max().unwrap();
        let min_high = b.iter().map(|x| x.lba).min().unwrap();
        assert!(max_low < min_high, "partitions overlap");
        assert_eq!(min_high, 1 << 40);
    }

    #[test]
    fn no_duplicate_addresses_live_at_once() {
        use std::collections::HashSet;
        let sm = SpaceManager::new(3, 30);
        let a = sm.allocate(20).unwrap();
        sm.release(&a[5..10]);
        let b = sm.allocate(10).unwrap();
        let mut live: HashSet<DiskAddr> = a[..5].iter().copied().collect();
        live.extend(&a[10..]);
        for addr in &b {
            assert!(live.insert(*addr), "address {addr:?} double-allocated");
        }
    }
}
