//! `tapejoin-disk` — the secondary-storage substrate: disk models, a disk
//! array with striping, and disk space management under the paper's
//! `D`-block budget.
//!
//! The paper's system model (§3) characterizes the disks by one aggregate
//! sustained rate `X_D` and assumes multi-block requests make seek and
//! rotational latency negligible (requests ≥ 30 blocks). Both aspects are
//! modelled here:
//!
//! * [`DiskModel`] carries per-disk transfer rate plus optional
//!   per-request positioning overhead. With overhead enabled, the
//!   sub-block bucket appends that Grace hashing produces at very small
//!   `M` degrade into random I/O — reproducing the left edge of the
//!   paper's Figures 8–9.
//! * [`DiskArray`] serves requests either as one aggregate server (the
//!   cost model's abstraction, default) or as `n` independent per-disk
//!   servers with striped placement (Section 4's "special disk striping
//!   routines"; used by the buffering ablation).
//! * [`SpaceManager`] enforces the `D`-block quota and balances
//!   allocations across disks, so Table 2's disk requirements are enforced
//!   at runtime rather than assumed.
//!
//! Blocks written to the array are stored and read back verbatim — data
//! movement is real, only the clock is simulated.
//!
//! The array also supports **deterministic fault injection**
//! ([`DiskFaultPolicy`]): seeded per-request errors recovered by
//! re-issuing the request after a capped exponential backoff, charged in
//! virtual time so faulty runs stay bit-for-bit reproducible.

#![warn(missing_docs)]

mod array;
mod error;
mod fault;
mod model;
mod space;

pub use array::{ArrayMode, DiskArray, DiskStats};
pub use error::DiskError;
pub use fault::DiskFaultPolicy;
pub use model::DiskModel;
pub use space::{DiskAddr, DiskSpaceExhausted, SpaceManager};
