//! Typed disk errors.
//!
//! The array used to `panic!` on a read of a block that was never
//! written. That turns a planner or join-method bug into a process abort
//! deep inside the simulation, where a workload server would lose every
//! concurrent query. Instead the array records a sticky [`DiskError`]
//! that the join runner surfaces through its `Result` path (see
//! `TertiaryJoin::run`), the same shape as the tape crate's
//! `LibraryError`.

use std::fmt;

use crate::space::DiskAddr;

/// An error detected by the disk array.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiskError {
    /// A read addressed a block that was never written. The array
    /// returns a zeroed placeholder block for the slot and records this
    /// error; the join that issued the read fails with it.
    UnwrittenBlock {
        /// The offending address.
        addr: DiskAddr,
    },
}

impl fmt::Display for DiskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DiskError::UnwrittenBlock { addr } => {
                write!(
                    f,
                    "read of unwritten disk block (disk {}, lba {})",
                    addr.disk, addr.lba
                )
            }
        }
    }
}

impl std::error::Error for DiskError {}
