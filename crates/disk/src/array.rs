//! The disk array: timing + actual block storage.
//!
//! lint:allow-file(L9, disk-array device model owned by one fleet member; all task handles stay on that member's executor)

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use tapejoin_obs::{Recorder, SpanKind};
use tapejoin_rel::BlockRef;
use tapejoin_sim::{join_all, spawn, Duration, Server};

use crate::error::DiskError;
use crate::fault::{DiskFaultInjector, DiskFaultPolicy};
use crate::model::DiskModel;
use crate::space::DiskAddr;

/// How the array's service time is modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayMode {
    /// One FIFO server at `n ×` the per-disk rate — the paper's `X_D`
    /// abstraction and the one the analytic cost model matches.
    Aggregate,
    /// `n` independent FIFO servers; a request is split by placement and
    /// completes when the slowest disk finishes. Placement quality then
    /// matters, which is what Section 4's striping discussion is about.
    PerDisk,
}

/// Cumulative array statistics. Disk *traffic* (Figure 7) is
/// `blocks_read + blocks_written`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DiskStats {
    /// Blocks transferred disk → host.
    pub blocks_read: u64,
    /// Blocks transferred host → disk.
    pub blocks_written: u64,
    /// Read requests issued.
    pub read_requests: u64,
    /// Write requests issued.
    pub write_requests: u64,
    /// Requests that hit an injected error and were retried.
    pub faults: u64,
    /// Total retries across all faulted requests.
    pub fault_retries: u64,
    /// Faulted requests whose retry budget was exhausted.
    pub failed_faults: u64,
    /// Virtual time spent in fault recovery (backoff + re-issues),
    /// disjoint from clean service time.
    pub fault_time: Duration,
}

impl DiskStats {
    /// Total block traffic (reads + writes), the paper's Figure 7 metric.
    pub fn traffic(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }
}

/// An array of `n` identical disks with real block storage.
///
/// Cheap to clone (shared handle). All I/O charges virtual time through
/// FIFO servers; the data itself is stored and returned verbatim.
#[derive(Clone)]
pub struct DiskArray {
    model: Rc<DiskModel>,
    mode: ArrayMode,
    disks: u32,
    block_bytes: u64,
    aggregate: Server,
    per_disk: Rc<Vec<Server>>,
    store: Rc<RefCell<HashMap<DiskAddr, BlockRef>>>,
    /// First error observed (sticky until [`DiskArray::take_error`]).
    error: Rc<RefCell<Option<DiskError>>>,
    /// Sticky: some request exhausted its retry budget and the array
    /// needs service (see [`DiskArray::has_failed`]).
    failed: Rc<RefCell<bool>>,
    stats: Rc<RefCell<DiskStats>>,
    faults: Rc<RefCell<Option<Vec<DiskFaultInjector>>>>,
    recorder: Rc<RefCell<Recorder>>,
}

impl DiskArray {
    /// Create an array of `disks` drives of the given model.
    pub fn new(model: DiskModel, disks: u32, block_bytes: u64, mode: ArrayMode) -> Self {
        assert!(disks > 0, "need at least one disk");
        assert!(block_bytes > 0, "block size must be positive");
        DiskArray {
            model: Rc::new(model),
            mode,
            disks,
            block_bytes,
            aggregate: Server::new("disk-array"),
            per_disk: Rc::new(
                (0..disks)
                    .map(|i| Server::new(format!("disk-{i}")))
                    .collect(),
            ),
            store: Rc::new(RefCell::new(HashMap::new())),
            error: Rc::new(RefCell::new(None)),
            failed: Rc::new(RefCell::new(false)),
            stats: Rc::new(RefCell::new(DiskStats::default())),
            faults: Rc::new(RefCell::new(None)),
            recorder: Rc::new(RefCell::new(Recorder::disabled())),
        }
    }

    /// Arm deterministic fault injection. Each disk derives its own
    /// seeded stream from the policy (the aggregate server uses disk 0's
    /// stream), so the fault schedule is independent of request
    /// interleaving across devices.
    pub fn set_fault_policy(&self, policy: DiskFaultPolicy) {
        let injectors = (0..self.disks as u64)
            .map(|d| DiskFaultInjector::new(policy.clone(), d))
            .collect();
        *self.faults.borrow_mut() = Some(injectors);
    }

    /// Number of disks.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Aggregate sustained rate `X_D` in bytes/second.
    pub fn aggregate_rate(&self) -> f64 {
        self.model.transfer_rate * self.disks as f64
    }

    /// The per-disk model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DiskStats {
        *self.stats.borrow()
    }

    /// Queueing statistics of the aggregate service center (busy time,
    /// queue depth, per-request waits). In [`ArrayMode::PerDisk`] the
    /// aggregate server is idle; use per-disk activity logs instead.
    pub fn server_stats(&self) -> tapejoin_sim::ServerStats {
        self.aggregate.stats()
    }

    /// Attach an observability recorder: every service interval becomes a
    /// `device-op` span (on `disk-array` in aggregate mode, `disk-{i}`
    /// per disk otherwise) and every injected fault's recovery a `fault`
    /// span on the same track. A disabled recorder is a no-op.
    pub fn set_recorder(&self, rec: Recorder) {
        self.aggregate.attach_observer(Rc::new(rec.share()));
        for server in self.per_disk.iter() {
            server.attach_observer(Rc::new(rec.share()));
        }
        *self.recorder.borrow_mut() = rec;
    }

    /// Fallible read: like [`DiskArray::read`], but reports an
    /// [`DiskError::UnwrittenBlock`] to the caller instead of poisoning
    /// the array. Virtual time is still charged for the request (the
    /// heads moved; the error is discovered on transfer).
    pub async fn try_read(&self, addrs: &[DiskAddr]) -> Result<Vec<BlockRef>, DiskError> {
        let missing = {
            let store = self.store.borrow();
            addrs.iter().find(|a| !store.contains_key(a)).copied()
        };
        let already_poisoned = self.error.borrow().is_some();
        let blocks = self.read(addrs).await;
        match missing {
            Some(addr) => {
                // `read` just recorded this error in the sticky slot;
                // hand it to the caller instead of leaving the array
                // poisoned — unless an older error was already pending.
                if !already_poisoned {
                    self.error.borrow_mut().take();
                }
                Err(DiskError::UnwrittenBlock { addr })
            }
            None => Ok(blocks),
        }
    }

    /// Whether some request exhausted its retry budget since the last
    /// [`DiskArray::replace_failed_unit`] — the array needs service. A
    /// failed array still serves requests correctly (injected faults are
    /// timing-only); callers that care about durability check this at
    /// their unit-of-work boundaries.
    pub fn has_failed(&self) -> bool {
        *self.failed.borrow()
    }

    /// Hot-spare service: clears the failed flag and disarms fault
    /// injection — the rebuilt unit is pristine hardware, so it draws no
    /// further faults. Contents are preserved (the rebuild restores
    /// surviving data; the caller charges the rebuild delay separately)
    /// and cumulative statistics keep counting across the swap.
    pub fn replace_failed_unit(&self) {
        *self.failed.borrow_mut() = false;
        *self.faults.borrow_mut() = None;
    }

    /// Take the first error recorded by an infallible [`DiskArray::read`]
    /// since the last call, clearing it. The join runner calls this after
    /// the simulation finishes and fails the join with the error.
    pub fn take_error(&self) -> Option<DiskError> {
        self.error.borrow_mut().take()
    }

    /// Write `blocks[i]` to `addrs[i]` as one logical request.
    pub async fn write(&self, addrs: &[DiskAddr], blocks: &[BlockRef]) {
        assert_eq!(addrs.len(), blocks.len(), "address/block count mismatch");
        if addrs.is_empty() {
            return;
        }
        {
            let mut store = self.store.borrow_mut();
            for (a, b) in addrs.iter().zip(blocks) {
                store.insert(*a, Rc::clone(b));
            }
        }
        {
            let mut st = self.stats.borrow_mut();
            st.blocks_written += addrs.len() as u64;
            st.write_requests += 1;
        }
        self.charge(addrs).await;
    }

    /// Read the blocks at `addrs` (must have been written) as one logical
    /// request, in address order.
    ///
    /// A read of a never-written address is a caller bug; instead of
    /// panicking mid-simulation it yields a zeroed placeholder block and
    /// records a sticky [`DiskError::UnwrittenBlock`] that
    /// [`DiskArray::take_error`] (and through it the join runner's
    /// `Result` path) surfaces. Use [`DiskArray::try_read`] to observe
    /// the error at the call site.
    pub async fn read(&self, addrs: &[DiskAddr]) -> Vec<BlockRef> {
        if addrs.is_empty() {
            return Vec::new();
        }
        let blocks: Vec<BlockRef> = {
            let store = self.store.borrow();
            addrs
                .iter()
                .map(|a| match store.get(a) {
                    Some(b) => Rc::clone(b),
                    None => {
                        let mut err = self.error.borrow_mut();
                        if err.is_none() {
                            *err = Some(DiskError::UnwrittenBlock { addr: *a });
                        }
                        Rc::new(tapejoin_rel::Block::empty())
                    }
                })
                .collect()
        };
        {
            let mut st = self.stats.borrow_mut();
            st.blocks_read += addrs.len() as u64;
            st.read_requests += 1;
        }
        self.charge(addrs).await;
        blocks
    }

    /// Charge virtual time for one logical request touching `addrs`.
    ///
    /// Fault outcomes are drawn *synchronously*, before any awaiting, in
    /// request-issue order — the schedule therefore depends only on the
    /// seed and the request sequence, never on how device service
    /// intervals happen to interleave.
    async fn charge(&self, addrs: &[DiskAddr]) {
        match self.mode {
            ArrayMode::Aggregate => {
                let bytes = addrs.len() as u64 * self.block_bytes;
                let service = self.model.service_time(bytes, self.disks as f64);
                let penalty = self.fault_penalty(0, service);
                let rec = self.recorder.borrow().share();
                self.aggregate
                    .serve_with(move || {
                        record_fault_span(&rec, "disk-array", service, penalty);
                        (service + penalty, ())
                    })
                    .await;
            }
            ArrayMode::PerDisk => {
                // Split by placement; the request completes when the
                // slowest disk finishes its share.
                let mut per_disk_count = vec![0u64; self.disks as usize];
                for a in addrs {
                    per_disk_count[a.disk as usize] += 1;
                }
                let mut parts = Vec::new();
                for (d, count) in per_disk_count.into_iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let server = self.per_disk[d].clone();
                    let service = self.model.service_time(count * self.block_bytes, 1.0);
                    let penalty = self.fault_penalty(d, service);
                    let rec = self.recorder.borrow().share();
                    parts.push(spawn(async move {
                        server
                            .serve_with(move || {
                                record_fault_span(&rec, &format!("disk-{d}"), service, penalty);
                                (service + penalty, ())
                            })
                            .await
                    }));
                }
                join_all(parts.into_iter().map(|h| h.join()).collect()).await;
            }
        }
    }

    /// Draw the fault outcome for one request on disk `stream` and return
    /// the recovery time to add to its service (zero when injection is
    /// off or the request is clean). Counters are updated here, once per
    /// faulted request.
    fn fault_penalty(&self, stream: usize, service: Duration) -> Duration {
        let mut faults = self.faults.borrow_mut();
        let Some(injectors) = faults.as_mut() else {
            return Duration::ZERO;
        };
        let inj = &mut injectors[stream];
        let Some(fault) = inj.on_request() else {
            return Duration::ZERO;
        };
        let penalty = inj.penalty(fault, service);
        let mut st = self.stats.borrow_mut();
        st.faults += 1;
        st.fault_retries += fault.retries as u64;
        if fault.exhausted {
            st.failed_faults += 1;
            *self.failed.borrow_mut() = true;
        }
        st.fault_time += penalty;
        penalty
    }
}

/// Record one fault-recovery interval as a `fault` span. Called at
/// service start (inside `serve_with`), so the recovery occupies the tail
/// of the service interval: `[start + clean, start + clean + penalty)`.
fn record_fault_span(rec: &Recorder, track: &str, clean: Duration, penalty: Duration) {
    if !penalty.is_zero() {
        let at = tapejoin_sim::now() + clean;
        rec.leaf(SpanKind::Fault, track, "fault-recovery", at, at + penalty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceManager;
    use std::rc::Rc;
    use tapejoin_rel::{Block, Tuple};
    use tapejoin_sim::{now, Simulation};

    const BLOCK: u64 = 1 << 16;

    fn blocks(n: u64) -> Vec<BlockRef> {
        (0..n)
            .map(|i| Rc::new(Block::new(vec![Tuple::new(i, i)])))
            .collect()
    }

    #[test]
    fn aggregate_mode_times_at_n_times_rate() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::Aggregate);
            let sm = SpaceManager::new(2, 64);
            let addrs = sm.allocate(32).unwrap();
            arr.write(&addrs, &blocks(32)).await;
            // 32 * 64 KiB = 2 MiB at 2 MB/s aggregate.
            let expect = 32.0 * BLOCK as f64 / 2e6;
            assert!((now().as_secs_f64() - expect).abs() < 1e-6);
        });
    }

    #[test]
    fn data_roundtrips_through_the_array() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 3, BLOCK, ArrayMode::Aggregate);
            let sm = SpaceManager::new(3, 100);
            let bs = blocks(10);
            let addrs = sm.allocate(10).unwrap();
            arr.write(&addrs, &bs).await;
            let back = arr.read(&addrs).await;
            for (orig, read) in bs.iter().zip(&back) {
                assert_eq!(orig.checksum(), read.checksum());
            }
            let st = arr.stats();
            assert_eq!(st.blocks_written, 10);
            assert_eq!(st.blocks_read, 10);
            assert_eq!(st.traffic(), 20);
        });
    }

    #[test]
    fn per_disk_mode_balanced_equals_aggregate() {
        let balanced = run_per_disk(true);
        let skewed = run_per_disk(false);
        // Balanced placement: both disks work in parallel, 1 MiB each at
        // 1 MB/s. Skewed placement: one disk does all 2 MiB.
        assert!((skewed / balanced - 2.0).abs() < 1e-6);

        fn run_per_disk(balanced: bool) -> f64 {
            let mut sim = Simulation::new();
            sim.run(async move {
                let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::PerDisk);
                let addrs: Vec<DiskAddr> = (0..32)
                    .map(|i| DiskAddr {
                        disk: if balanced { (i % 2) as u32 } else { 0 },
                        lba: i,
                    })
                    .collect();
                arr.write(&addrs, &blocks(32)).await;
                now().as_secs_f64()
            })
        }
    }

    #[test]
    fn per_request_overhead_punishes_small_requests() {
        let one_big = run(1);
        let many_small = run(16);
        // Same bytes, 15 extra positioning delays of 17.6 ms each.
        let expect_delta = 15.0 * (0.012 + 0.0056);
        assert!((many_small - one_big - expect_delta).abs() < 1e-6);

        fn run(requests: u64) -> f64 {
            let mut sim = Simulation::new();
            sim.run(async move {
                let model = DiskModel::quantum_fireball().with_rate(1e6);
                let arr = DiskArray::new(model, 1, BLOCK, ArrayMode::Aggregate);
                let sm = SpaceManager::new(1, 64);
                let addrs = sm.allocate(16).unwrap();
                let bs = blocks(16);
                let per = 16 / requests as usize;
                for chunk in 0..requests as usize {
                    let lo = chunk * per;
                    arr.write(&addrs[lo..lo + per], &bs[lo..lo + per]).await;
                }
                now().as_secs_f64()
            })
        }
    }

    #[test]
    fn reading_unwritten_block_records_sticky_error() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            let bad = DiskAddr { disk: 0, lba: 5 };
            let got = arr.read(&[bad]).await;
            // The infallible path hands back a zeroed placeholder and
            // poisons the array instead of panicking mid-simulation.
            assert_eq!(got.len(), 1);
            assert!(got[0].tuples().is_empty());
            assert_eq!(
                arr.take_error(),
                Some(DiskError::UnwrittenBlock { addr: bad })
            );
            // take_error drains the slot.
            assert_eq!(arr.take_error(), None);
        });
    }

    #[test]
    fn try_read_reports_unwritten_block_without_poisoning() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            let sm = SpaceManager::new(1, 64);
            let addrs = sm.allocate(1).unwrap();
            arr.write(&addrs, &blocks(1)).await;
            let bad = DiskAddr { disk: 0, lba: 60 };
            let err = arr.try_read(&[addrs[0], bad]).await.unwrap_err();
            assert_eq!(err, DiskError::UnwrittenBlock { addr: bad });
            // The fallible path reported the error directly; it must not
            // leave the array poisoned for a later take_error.
            assert_eq!(arr.take_error(), None);
            // A written block still reads fine afterwards.
            assert!(arr.try_read(&addrs).await.is_ok());
        });
    }

    #[test]
    fn fault_retry_cost_charged_exactly_once() {
        // error_rate = 1.0: every request faults and every retry fails,
        // so each request deterministically burns max_retries retries
        // (5 + 10 + 20 ms backoff) plus three full re-issues, and is
        // counted as failed. The elapsed time must equal clean service
        // plus exactly that penalty — no double charge anywhere.
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            arr.set_fault_policy(
                DiskFaultPolicy::new(5)
                    .error_rate(1.0)
                    .max_retries(3)
                    .backoff(Duration::from_millis(5), Duration::from_millis(80)),
            );
            let sm = SpaceManager::new(1, 64);
            let addrs = sm.allocate(8).unwrap();
            let requests = 4usize;
            let per = 8 / requests;
            let bs = blocks(8);
            for chunk in 0..requests {
                let lo = chunk * per;
                arr.write(&addrs[lo..lo + per], &bs[lo..lo + per]).await;
            }
            let service = per as f64 * BLOCK as f64 / 1e6;
            let backoff = 0.005 + 0.010 + 0.020;
            let expect = requests as f64 * (service + backoff + 3.0 * service);
            assert!(
                (now().as_secs_f64() - expect).abs() < 1e-9,
                "elapsed {} expect {expect}",
                now().as_secs_f64()
            );
            let st = arr.stats();
            assert_eq!(st.faults, requests as u64);
            assert_eq!(st.fault_retries, 3 * requests as u64);
            assert_eq!(st.failed_faults, requests as u64);
            let penalty = requests as f64 * (backoff + 3.0 * service);
            assert!((st.fault_time.as_secs_f64() - penalty).abs() < 1e-9);
        });
    }

    #[test]
    fn fault_time_accounts_for_entire_slowdown() {
        // At a moderate error rate the elapsed time of a faulty run must
        // equal the clean run plus exactly the accumulated fault_time,
        // and same-seed runs must be bit-for-bit identical.
        let clean = run_workload(None);
        let faulty_a = run_workload(Some(21));
        let faulty_b = run_workload(Some(21));
        assert_eq!(faulty_a, faulty_b, "same seed must reproduce exactly");
        let (clean_t, clean_stats) = clean;
        let (faulty_t, faulty_stats) = faulty_a;
        assert!(faulty_stats.faults > 0, "rate 0.4 over 64 requests");
        assert_eq!(faulty_t, clean_t + faulty_stats.fault_time);
        assert_eq!(clean_stats.fault_time, Duration::ZERO);
        assert_eq!(faulty_stats.traffic(), clean_stats.traffic());

        fn run_workload(fault_seed: Option<u64>) -> (Duration, DiskStats) {
            let mut sim = Simulation::new();
            sim.run(async move {
                let model = DiskModel::quantum_fireball().with_rate(1e6);
                let arr = DiskArray::new(model, 1, BLOCK, ArrayMode::Aggregate);
                if let Some(seed) = fault_seed {
                    arr.set_fault_policy(DiskFaultPolicy::new(seed).error_rate(0.4));
                }
                let sm = SpaceManager::new(1, 64);
                let addrs = sm.allocate(64).unwrap();
                let bs = blocks(64);
                for i in 0..64usize {
                    arr.write(&addrs[i..i + 1], &bs[i..i + 1]).await;
                }
                for i in (0..64usize).rev() {
                    arr.read(&addrs[i..i + 1]).await;
                }
                (
                    tapejoin_sim::now().duration_since(tapejoin_sim::SimTime::ZERO),
                    arr.stats(),
                )
            })
        }
    }

    #[test]
    fn per_disk_fault_streams_are_deterministic_and_independent() {
        // Per-disk mode: each disk draws from its own stream, and the
        // request completes when the slowest disk (including its fault
        // penalty) finishes. Same seed → identical elapsed time; a
        // different seed changes the schedule.
        let a = run_striped(3);
        let b = run_striped(3);
        let c = run_striped(4);
        assert_eq!(a, b);
        assert_ne!(a, c, "different seeds should shift the fault schedule");

        fn run_striped(seed: u64) -> Duration {
            let mut sim = Simulation::new();
            sim.run(async move {
                let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::PerDisk);
                arr.set_fault_policy(DiskFaultPolicy::new(seed).error_rate(0.5));
                let bs = blocks(32);
                for i in 0..16u64 {
                    let addrs = [DiskAddr { disk: 0, lba: i }, DiskAddr { disk: 1, lba: i }];
                    let lo = (i * 2) as usize;
                    arr.write(&addrs, &bs[lo..lo + 2]).await;
                }
                tapejoin_sim::now().duration_since(tapejoin_sim::SimTime::ZERO)
            })
        }
    }

    #[test]
    fn failed_flag_sticks_until_unit_replaced() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            arr.set_fault_policy(DiskFaultPolicy::new(5).error_rate(1.0).max_retries(1));
            let sm = SpaceManager::new(1, 64);
            let addrs = sm.allocate(2).unwrap();
            let bs = blocks(2);
            assert!(!arr.has_failed());
            arr.write(&addrs, &bs).await;
            assert!(arr.has_failed(), "exhausted retries must mark the array");
            let failed_before = arr.stats().failed_faults;
            assert!(failed_before > 0);

            arr.replace_failed_unit();
            assert!(!arr.has_failed());
            // The rebuilt unit preserves contents and draws no faults.
            let back = arr.read(&addrs).await;
            assert_eq!(back[0].checksum(), bs[0].checksum());
            assert!(!arr.has_failed());
            assert_eq!(arr.stats().failed_faults, failed_before);
        });
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            let addr = [DiskAddr { disk: 0, lba: 0 }];
            let first = blocks(1);
            let second = vec![Rc::new(Block::new(vec![Tuple::new(99, 99)]))];
            arr.write(&addr, &first).await;
            arr.write(&addr, &second).await;
            let back = arr.read(&addr).await;
            assert_eq!(back[0].checksum(), second[0].checksum());
        });
    }
}
