//! The disk array: timing + actual block storage.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use tapejoin_rel::BlockRef;
use tapejoin_sim::{join_all, spawn, Server};

use crate::model::DiskModel;
use crate::space::DiskAddr;

/// How the array's service time is modelled.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrayMode {
    /// One FIFO server at `n ×` the per-disk rate — the paper's `X_D`
    /// abstraction and the one the analytic cost model matches.
    Aggregate,
    /// `n` independent FIFO servers; a request is split by placement and
    /// completes when the slowest disk finishes. Placement quality then
    /// matters, which is what Section 4's striping discussion is about.
    PerDisk,
}

/// Cumulative array statistics. Disk *traffic* (Figure 7) is
/// `blocks_read + blocks_written`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DiskStats {
    /// Blocks transferred disk → host.
    pub blocks_read: u64,
    /// Blocks transferred host → disk.
    pub blocks_written: u64,
    /// Read requests issued.
    pub read_requests: u64,
    /// Write requests issued.
    pub write_requests: u64,
}

impl DiskStats {
    /// Total block traffic (reads + writes), the paper's Figure 7 metric.
    pub fn traffic(&self) -> u64 {
        self.blocks_read + self.blocks_written
    }
}

/// An array of `n` identical disks with real block storage.
///
/// Cheap to clone (shared handle). All I/O charges virtual time through
/// FIFO servers; the data itself is stored and returned verbatim.
#[derive(Clone)]
pub struct DiskArray {
    model: Rc<DiskModel>,
    mode: ArrayMode,
    disks: u32,
    block_bytes: u64,
    aggregate: Server,
    per_disk: Rc<Vec<Server>>,
    store: Rc<RefCell<HashMap<DiskAddr, BlockRef>>>,
    stats: Rc<RefCell<DiskStats>>,
}

impl DiskArray {
    /// Create an array of `disks` drives of the given model.
    pub fn new(model: DiskModel, disks: u32, block_bytes: u64, mode: ArrayMode) -> Self {
        assert!(disks > 0, "need at least one disk");
        assert!(block_bytes > 0, "block size must be positive");
        DiskArray {
            model: Rc::new(model),
            mode,
            disks,
            block_bytes,
            aggregate: Server::new("disk-array"),
            per_disk: Rc::new(
                (0..disks)
                    .map(|i| Server::new(format!("disk-{i}")))
                    .collect(),
            ),
            store: Rc::new(RefCell::new(HashMap::new())),
            stats: Rc::new(RefCell::new(DiskStats::default())),
        }
    }

    /// Number of disks.
    pub fn disks(&self) -> u32 {
        self.disks
    }

    /// Block size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Aggregate sustained rate `X_D` in bytes/second.
    pub fn aggregate_rate(&self) -> f64 {
        self.model.transfer_rate * self.disks as f64
    }

    /// The per-disk model.
    pub fn model(&self) -> &DiskModel {
        &self.model
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> DiskStats {
        *self.stats.borrow()
    }

    /// Record every service interval of the array into `log` (the
    /// aggregate server in aggregate mode, every disk in per-disk mode).
    pub fn attach_activity_log(&self, log: tapejoin_sim::ActivityLog) {
        self.aggregate.attach_activity_log(log.clone());
        for server in self.per_disk.iter() {
            server.attach_activity_log(log.clone());
        }
    }

    /// Write `blocks[i]` to `addrs[i]` as one logical request.
    pub async fn write(&self, addrs: &[DiskAddr], blocks: &[BlockRef]) {
        assert_eq!(addrs.len(), blocks.len(), "address/block count mismatch");
        if addrs.is_empty() {
            return;
        }
        {
            let mut store = self.store.borrow_mut();
            for (a, b) in addrs.iter().zip(blocks) {
                store.insert(*a, Rc::clone(b));
            }
        }
        {
            let mut st = self.stats.borrow_mut();
            st.blocks_written += addrs.len() as u64;
            st.write_requests += 1;
        }
        self.charge(addrs).await;
    }

    /// Read the blocks at `addrs` (must have been written) as one logical
    /// request, in address order.
    pub async fn read(&self, addrs: &[DiskAddr]) -> Vec<BlockRef> {
        if addrs.is_empty() {
            return Vec::new();
        }
        let blocks: Vec<BlockRef> = {
            let store = self.store.borrow();
            addrs
                .iter()
                .map(|a| {
                    Rc::clone(
                        store
                            .get(a)
                            .unwrap_or_else(|| panic!("read of unwritten disk block {a:?}")),
                    )
                })
                .collect()
        };
        {
            let mut st = self.stats.borrow_mut();
            st.blocks_read += addrs.len() as u64;
            st.read_requests += 1;
        }
        self.charge(addrs).await;
        blocks
    }

    /// Charge virtual time for one logical request touching `addrs`.
    async fn charge(&self, addrs: &[DiskAddr]) {
        match self.mode {
            ArrayMode::Aggregate => {
                let bytes = addrs.len() as u64 * self.block_bytes;
                let service = self.model.service_time(bytes, self.disks as f64);
                self.aggregate.serve(service).await;
            }
            ArrayMode::PerDisk => {
                // Split by placement; the request completes when the
                // slowest disk finishes its share.
                let mut per_disk_count = vec![0u64; self.disks as usize];
                for a in addrs {
                    per_disk_count[a.disk as usize] += 1;
                }
                let mut parts = Vec::new();
                for (d, count) in per_disk_count.into_iter().enumerate() {
                    if count == 0 {
                        continue;
                    }
                    let server = self.per_disk[d].clone();
                    let service = self.model.service_time(count * self.block_bytes, 1.0);
                    parts.push(spawn(async move { server.serve(service).await }));
                }
                join_all(parts.into_iter().map(|h| h.join()).collect()).await;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::SpaceManager;
    use std::rc::Rc;
    use tapejoin_rel::{Block, Tuple};
    use tapejoin_sim::{now, Simulation};

    const BLOCK: u64 = 1 << 16;

    fn blocks(n: u64) -> Vec<BlockRef> {
        (0..n)
            .map(|i| Rc::new(Block::new(vec![Tuple::new(i, i)])))
            .collect()
    }

    #[test]
    fn aggregate_mode_times_at_n_times_rate() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::Aggregate);
            let sm = SpaceManager::new(2, 64);
            let addrs = sm.allocate(32).unwrap();
            arr.write(&addrs, &blocks(32)).await;
            // 32 * 64 KiB = 2 MiB at 2 MB/s aggregate.
            let expect = 32.0 * BLOCK as f64 / 2e6;
            assert!((now().as_secs_f64() - expect).abs() < 1e-6);
        });
    }

    #[test]
    fn data_roundtrips_through_the_array() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 3, BLOCK, ArrayMode::Aggregate);
            let sm = SpaceManager::new(3, 100);
            let bs = blocks(10);
            let addrs = sm.allocate(10).unwrap();
            arr.write(&addrs, &bs).await;
            let back = arr.read(&addrs).await;
            for (orig, read) in bs.iter().zip(&back) {
                assert_eq!(orig.checksum(), read.checksum());
            }
            let st = arr.stats();
            assert_eq!(st.blocks_written, 10);
            assert_eq!(st.blocks_read, 10);
            assert_eq!(st.traffic(), 20);
        });
    }

    #[test]
    fn per_disk_mode_balanced_equals_aggregate() {
        let balanced = run_per_disk(true);
        let skewed = run_per_disk(false);
        // Balanced placement: both disks work in parallel, 1 MiB each at
        // 1 MB/s. Skewed placement: one disk does all 2 MiB.
        assert!((skewed / balanced - 2.0).abs() < 1e-6);

        fn run_per_disk(balanced: bool) -> f64 {
            let mut sim = Simulation::new();
            sim.run(async move {
                let arr = DiskArray::new(DiskModel::ideal(1e6), 2, BLOCK, ArrayMode::PerDisk);
                let addrs: Vec<DiskAddr> = (0..32)
                    .map(|i| DiskAddr {
                        disk: if balanced { (i % 2) as u32 } else { 0 },
                        lba: i,
                    })
                    .collect();
                arr.write(&addrs, &blocks(32)).await;
                now().as_secs_f64()
            })
        }
    }

    #[test]
    fn per_request_overhead_punishes_small_requests() {
        let one_big = run(1);
        let many_small = run(16);
        // Same bytes, 15 extra positioning delays of 17.6 ms each.
        let expect_delta = 15.0 * (0.012 + 0.0056);
        assert!((many_small - one_big - expect_delta).abs() < 1e-6);

        fn run(requests: u64) -> f64 {
            let mut sim = Simulation::new();
            sim.run(async move {
                let model = DiskModel::quantum_fireball().with_rate(1e6);
                let arr = DiskArray::new(model, 1, BLOCK, ArrayMode::Aggregate);
                let sm = SpaceManager::new(1, 64);
                let addrs = sm.allocate(16).unwrap();
                let bs = blocks(16);
                let per = 16 / requests as usize;
                for chunk in 0..requests as usize {
                    let lo = chunk * per;
                    arr.write(&addrs[lo..lo + per], &bs[lo..lo + per]).await;
                }
                now().as_secs_f64()
            })
        }
    }

    #[test]
    #[should_panic(expected = "unwritten")]
    fn reading_unwritten_block_panics() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            arr.read(&[DiskAddr { disk: 0, lba: 5 }]).await;
        });
    }

    #[test]
    fn overwrite_replaces_contents() {
        let mut sim = Simulation::new();
        sim.run(async {
            let arr = DiskArray::new(DiskModel::ideal(1e6), 1, BLOCK, ArrayMode::Aggregate);
            let addr = [DiskAddr { disk: 0, lba: 0 }];
            let first = blocks(1);
            let second = vec![Rc::new(Block::new(vec![Tuple::new(99, 99)]))];
            arr.write(&addr, &first).await;
            arr.write(&addr, &second).await;
            let back = arr.read(&addr).await;
            assert_eq!(back[0].checksum(), second[0].checksum());
        });
    }
}
