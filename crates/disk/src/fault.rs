//! Deterministic fault injection for the disk array.
//!
//! Disk request errors (bus resets, command timeouts, remapped sectors)
//! are recovered by the controller re-issuing the request after a capped
//! exponential backoff — all in virtual time, so a faulty run is exactly
//! as deterministic as a clean one. Faults are timing-only: the stored
//! blocks are always returned intact, so join correctness is never
//! affected; only response time and the array's fault counters change.
//!
//! Each disk (and the aggregate server) owns a private seeded stream, so
//! the schedule is independent of cross-device interleaving.

use rand::{rngs::StdRng, Rng, SeedableRng};
use tapejoin_sim::Duration;

/// Fault model of the disk array.
#[derive(Clone, Debug)]
pub struct DiskFaultPolicy {
    /// Seed of the array's fault streams (each disk derives its own).
    pub seed: u64,
    /// Per-request probability of an error (first issue and every retry
    /// draw independently).
    pub error_rate: f64,
    /// Retries before the request is counted as *failed* (the final
    /// retry still completes — fail-stop is surfaced by the driver, not
    /// modelled as data loss).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per retry.
    pub backoff: Duration,
    /// Ceiling on a single retry's backoff.
    pub backoff_cap: Duration,
}

impl DiskFaultPolicy {
    /// A policy with the given seed, zero error rate, and defaults for
    /// the recovery knobs (4 retries, 5 ms → 80 ms capped backoff).
    pub fn new(seed: u64) -> Self {
        DiskFaultPolicy {
            seed,
            error_rate: 0.0,
            max_retries: 4,
            backoff: Duration::from_millis(5),
            backoff_cap: Duration::from_millis(80),
        }
    }

    /// Set the per-request error rate (builder style).
    pub fn error_rate(mut self, rate: f64) -> Self {
        self.error_rate = rate;
        self
    }

    /// Set the retry cap (builder style).
    pub fn max_retries(mut self, n: u32) -> Self {
        assert!(n > 0, "need at least one retry");
        self.max_retries = n;
        self
    }

    /// Set the initial backoff and its cap (builder style).
    pub fn backoff(mut self, base: Duration, cap: Duration) -> Self {
        self.backoff = base;
        self.backoff_cap = cap;
        self
    }

    /// `true` when this policy can ever inject a fault.
    pub fn is_active(&self) -> bool {
        self.error_rate > 0.0
    }

    /// Backoff delay before retry number `i` (0-based): `backoff × 2^i`,
    /// capped.
    pub fn backoff_delay(&self, i: u32) -> Duration {
        let doubled = self
            .backoff
            .checked_mul(1u64 << i.min(20))
            .unwrap_or(self.backoff_cap);
        doubled.min(self.backoff_cap)
    }
}

/// What the injector decided for one request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct RequestFault {
    /// Retries performed (≥ 1).
    pub retries: u32,
    /// The retry budget was exhausted (counted as a failed fault).
    pub exhausted: bool,
}

/// One seeded fault stream (per disk, or for the aggregate server).
#[derive(Clone, Debug)]
pub(crate) struct DiskFaultInjector {
    rng: StdRng,
    pub(crate) policy: DiskFaultPolicy,
}

impl DiskFaultInjector {
    pub(crate) fn new(policy: DiskFaultPolicy, stream: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&policy.error_rate),
            "error rate must be a probability: {}",
            policy.error_rate
        );
        // Decorrelate per-disk streams from one another.
        let seed = policy
            .seed
            .wrapping_add(stream.wrapping_add(1).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        DiskFaultInjector {
            rng: StdRng::seed_from_u64(seed),
            policy,
        }
    }

    /// Draw the outcome for one request: `None` for a clean request,
    /// otherwise the number of retries the controller needed (capped,
    /// with `exhausted` marking a blown budget).
    pub(crate) fn on_request(&mut self) -> Option<RequestFault> {
        let p = &self.policy;
        if !p.is_active() || self.rng.gen::<f64>() >= p.error_rate {
            return None;
        }
        let mut retries = 0u32;
        loop {
            retries += 1;
            if self.rng.gen::<f64>() >= p.error_rate {
                return Some(RequestFault {
                    retries,
                    exhausted: false,
                });
            }
            if retries >= p.max_retries {
                return Some(RequestFault {
                    retries,
                    exhausted: true,
                });
            }
        }
    }

    /// Total recovery time for `fault` on a request whose clean service
    /// takes `service`: each retry waits its backoff, then re-issues the
    /// whole request.
    pub(crate) fn penalty(&self, fault: RequestFault, service: Duration) -> Duration {
        let mut total = Duration::ZERO;
        for i in 0..fault.retries {
            total += self.policy.backoff_delay(i) + service;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_never_faults() {
        let mut inj = DiskFaultInjector::new(DiskFaultPolicy::new(3), 0);
        for _ in 0..1000 {
            assert_eq!(inj.on_request(), None);
        }
    }

    #[test]
    fn same_seed_same_schedule_distinct_streams_differ() {
        let policy = DiskFaultPolicy::new(11).error_rate(0.3);
        let mut a = DiskFaultInjector::new(policy.clone(), 0);
        let mut b = DiskFaultInjector::new(policy.clone(), 0);
        let mut c = DiskFaultInjector::new(policy, 1);
        let sa: Vec<_> = (0..500).map(|_| a.on_request()).collect();
        let sb: Vec<_> = (0..500).map(|_| b.on_request()).collect();
        let sc: Vec<_> = (0..500).map(|_| c.on_request()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc, "streams must be decorrelated per disk");
    }

    #[test]
    fn certain_error_rate_exhausts_deterministically() {
        let policy = DiskFaultPolicy::new(0).error_rate(1.0).max_retries(3);
        let mut inj = DiskFaultInjector::new(policy, 0);
        for _ in 0..50 {
            assert_eq!(
                inj.on_request(),
                Some(RequestFault {
                    retries: 3,
                    exhausted: true
                })
            );
        }
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p =
            DiskFaultPolicy::new(0).backoff(Duration::from_millis(5), Duration::from_millis(80));
        assert_eq!(p.backoff_delay(0), Duration::from_millis(5));
        assert_eq!(p.backoff_delay(1), Duration::from_millis(10));
        assert_eq!(p.backoff_delay(3), Duration::from_millis(40));
        assert_eq!(p.backoff_delay(4), Duration::from_millis(80));
        assert_eq!(p.backoff_delay(10), Duration::from_millis(80));
    }

    #[test]
    fn penalty_sums_backoffs_and_reissues() {
        let policy = DiskFaultPolicy::new(0)
            .error_rate(0.5)
            .backoff(Duration::from_millis(5), Duration::from_millis(80));
        let inj = DiskFaultInjector::new(policy, 0);
        let service = Duration::from_millis(100);
        let fault = RequestFault {
            retries: 3,
            exhausted: false,
        };
        // 5 + 10 + 20 ms backoff + 3 × 100 ms re-issues.
        assert_eq!(
            inj.penalty(fault, service),
            Duration::from_millis(5 + 10 + 20 + 300)
        );
    }
}
