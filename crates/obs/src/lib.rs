//! `tapejoin-obs` — unified observability over virtual time.
//!
//! The simulator can already answer *how long* a join took; this crate
//! answers *where the time went*, with one event model shared by every
//! layer:
//!
//! * **Spans** ([`Recorder`], [`Span`]) — hierarchical intervals
//!   (`join → step → device-op`, plus `fault`, `query`) with typed
//!   attributes. The recorder handle is threaded through the device
//!   models and join drivers; disabled (the default) it is an exact
//!   no-op, so untraced runs stay bit-identical.
//! * **Metrics** ([`MetricsRegistry`]) — monotonic counters, gauges, and
//!   fixed-bucket histograms keyed by `(name, device, method, phase)`,
//!   subsuming the ad-hoc fields scattered across `TapeStats`,
//!   `DiskStats`, and `FleetMetrics`.
//! * **Exporters** ([`perfetto_trace`], [`metrics_csv`], [`metrics_json`])
//!   — Chrome/Perfetto trace-event JSON (open in `ui.perfetto.dev`) and
//!   metrics dumps, plus a schema [`validate_trace_event_json`] check
//!   used by CI's trace-smoke step.
//! * **Profiles** ([`QueryProfile`], [`q_error`]) — the stable
//!   per-operator plan-vs-actual schema behind `EXPLAIN ANALYZE`:
//!   estimated vs observed cardinality, Q-error, tape/disk/CPU
//!   virtual-time split, and fault counters, JSON-encoded and checked by
//!   [`validate_query_profile_json`].
//! * **Conservation audits** ([`audit`], [`check_fault_time`]) — exact
//!   invariants over the span stream (`busy + idle == elapsed` per
//!   device, span nesting, step conservation, fault accounting), asserted
//!   by the differential and determinism test suites.
//!
//! # Example
//!
//! ```
//! use tapejoin_obs::{audit, perfetto_trace, Recorder, SpanKind};
//! use tapejoin_sim::{now, sleep, Duration, Simulation};
//!
//! let rec = Recorder::enabled();
//! let rec2 = rec.share(); // same-task handle; use fork() across tasks
//! let mut sim = Simulation::new();
//! sim.run(async move {
//!     let _join = rec2.scope(SpanKind::Join, "join", "DT-NB");
//!     sleep(Duration::from_millis(2)).await;
//!     rec2.leaf(SpanKind::DeviceOp, "tape-R", "read", now() - Duration::from_millis(1), now());
//! });
//! audit(&rec).assert_ok();
//! let json = perfetto_trace(&rec);
//! assert!(tapejoin_obs::validate_trace_event_json(&json).is_ok());
//! ```

#![warn(missing_docs)]

mod audit;
pub mod json;
pub mod labels;
mod metrics;
mod perfetto;
mod profile;
mod report;
mod span;

pub use audit::{audit, audit_spans, check_fault_time, fault_time, AuditReport};
pub use metrics::{
    default_time_bounds, nearest_rank, Histogram, MetricKey, MetricsRegistry, MetricsSnapshot,
};
pub use perfetto::{metrics_csv, metrics_json, perfetto_trace, validate_trace_event_json};
pub use profile::{
    q_error, validate_query_profile_json, validate_query_profile_value, Alternative,
    OperatorProfile, QueryProfile, OPERATOR_FIELDS, PROFILE_FIELDS, QUERY_FIELDS,
};
pub use report::{gantt_rows, trace_end, TrackRow};
pub use span::{AttrValue, Recorder, ScopeGuard, Span, SpanId, SpanKind};
