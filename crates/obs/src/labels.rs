//! Canonical span/metric label tables.
//!
//! The obs crate cannot depend on the core crate (the dependency points
//! the other way), so the join-method abbreviations that appear on
//! `SpanKind::Join` spans and in metric keys are mirrored here as plain
//! strings. The workspace linter's rule L5 cross-checks this table
//! against `JoinMethod` in `crates/core/src/method.rs`: every variant's
//! `abbrev()` must appear below, so a new method cannot ship without its
//! spans validating, and a stale label cannot linger unnoticed.

/// Every join-method label: the paper's Table 2 order, then the
/// skew-adaptive extensions.
pub const METHOD_LABELS: &[&str] = &[
    "DT-NB",
    "CDT-NB/MB",
    "CDT-NB/DB",
    "DT-GH",
    "CDT-GH",
    "CTT-GH",
    "TT-GH",
    "DHH",
    "CAP",
];

/// Is `label` a known join-method label (the name a `SpanKind::Join`
/// span or a metric key's `method` dimension is expected to carry)?
pub fn is_method_label(label: &str) -> bool {
    METHOD_LABELS.contains(&label)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_unique_and_nonempty() {
        assert!(!METHOD_LABELS.is_empty());
        for (i, l) in METHOD_LABELS.iter().enumerate() {
            assert!(!l.is_empty());
            assert!(!METHOD_LABELS[..i].contains(l), "duplicate label {l}");
        }
        assert!(is_method_label("DT-NB"));
        assert!(!is_method_label("dt-nb"));
    }
}
