//! A minimal JSON parser, just enough to validate the trace-event files
//! this crate emits (the build environment is offline, so no serde).
//!
//! Supports the full JSON grammar except that numbers are parsed as `f64`
//! and duplicate object keys keep the last value.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (keys sorted; duplicates keep the last value).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// The object map, if this is an object.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Object member lookup (None on non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Parse a complete JSON document; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = String::from_utf8_lossy(&self.bytes[start..self.pos]);
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16).map_err(|e| e.to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).map_err(|e| e.to_string())?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }
}

/// Escape a string for embedding in JSON output (adds no quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_documents() {
        let doc = r#"{"a": [1, 2.5, -3e2], "b": {"c": "x\ny", "d": true}, "e": null}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_num(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Bool(true)));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["{", "[1,]", "{\"a\" 1}", "tru", "\"abc", "1 2", "{\"a\":}"] {
            assert!(parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn escape_round_trips_through_parse() {
        let raw = "line1\nline2\t\"quoted\" \\slash\u{1}";
        let doc = format!("{{\"k\": \"{}\"}}", escape(raw));
        let v = parse(&doc).unwrap();
        assert_eq!(v.get("k").unwrap().as_str(), Some(raw));
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse(r#""\u0041\u00e9""#).unwrap();
        assert_eq!(v.as_str(), Some("Aé"));
    }
}
