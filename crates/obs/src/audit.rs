//! Conservation auditor: structural and time-accounting invariants over a
//! recorded span stream.
//!
//! Virtual time makes strong invariants checkable exactly (no measurement
//! noise): every nanosecond a device is busy must be inside some span,
//! spans must nest, and per-device busy time can never exceed the window
//! it was observed in. The auditor is run by the differential and
//! determinism suites after every traced run — with and without injected
//! faults — so a regression in the instrumentation itself fails tests
//! rather than silently skewing figures.
//!
//! Checked invariants:
//!
//! 1. **Closure** — every span has `end >= start` and no span is left
//!    open.
//! 2. **Nesting** — a scope-kind child lies fully inside its parent's
//!    interval; a leaf child *completes* inside its parent (leaf spans
//!    such as prefetch device-ops may start before the step that awaits
//!    them).
//! 3. **Per-track serialization** — `device-op` spans on one track are
//!    ordered and never overlap (each modelled device is a FIFO server),
//!    which is exactly the `busy + idle == elapsed` conservation law:
//!    with non-overlapping ops, busy time is the sum of op durations and
//!    idle is the rest of the window.
//! 4. **Busy ≤ elapsed** — per track, total device-op time never exceeds
//!    the trace window.
//! 5. **Step conservation** — for every scope span and track, the sum of
//!    child device-op time clamped to the scope's interval is at most the
//!    scope's duration.
//! 6. **Plan spans are markers** — a `plan` span is a zero-width
//!    annotation (planning happens before the virtual clock starts), so
//!    any extent on one would charge phantom time.
//! 7. **Profiled-run conservation** — for every `query` span, the summed
//!    duration of its direct scope-kind children (the operator spans a
//!    profiled run records) is at most the query's elapsed time.
//! 8. **Fault accounting** — ([`check_fault_time`]) the total duration of
//!    `fault` spans equals the fault-recovery time a `FaultSummary`
//!    reports, so recovery charges can never leak out of the trace.

use std::collections::BTreeMap;

use tapejoin_sim::{Duration, SimTime};

use crate::span::{Recorder, Span, SpanKind};

/// Outcome of an audit: which checks ran and every violation found.
#[derive(Clone, Debug, Default)]
pub struct AuditReport {
    /// Number of individual checks performed.
    pub checks: usize,
    /// Human-readable description of each violated invariant.
    pub violations: Vec<String>,
}

impl AuditReport {
    /// `true` when no invariant was violated.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// Panic with all violations unless the audit passed. Use in tests.
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "conservation audit failed ({} checks):\n  {}",
            self.checks,
            self.violations.join("\n  ")
        );
    }
}

impl std::fmt::Display for AuditReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_ok() {
            write!(f, "audit ok ({} checks)", self.checks)
        } else {
            write!(
                f,
                "audit FAILED ({} checks, {} violations):\n  {}",
                self.checks,
                self.violations.len(),
                self.violations.join("\n  ")
            )
        }
    }
}

fn overlap(a_start: SimTime, a_end: SimTime, b_start: SimTime, b_end: SimTime) -> Duration {
    let lo = a_start.max(b_start);
    let hi = a_end.min(b_end);
    hi.saturating_duration_since(lo)
}

/// Audit every invariant over the recorder's span stream. A disabled or
/// empty recorder trivially passes.
pub fn audit(rec: &Recorder) -> AuditReport {
    audit_spans(&rec.spans())
}

/// [`audit`] over an explicit span snapshot.
pub fn audit_spans(spans: &[Span]) -> AuditReport {
    let mut report = AuditReport::default();

    // 1. Closure.
    for span in spans {
        report.checks += 1;
        match span.end {
            None => report.violations.push(format!(
                "span {} '{}' ({:?}) left open",
                span.id.0, span.name, span.kind
            )),
            Some(end) if end < span.start => report.violations.push(format!(
                "span {} '{}' ends at {end:?} before it starts at {:?}",
                span.id.0, span.name, span.start
            )),
            Some(_) => {}
        }
    }

    // 2. Nesting.
    for span in spans {
        let Some(parent_id) = span.parent else {
            continue;
        };
        let parent = &spans[parent_id.0];
        let (Some(end), Some(parent_end)) = (span.end, parent.end) else {
            continue; // open spans already reported
        };
        report.checks += 1;
        let contained = if span.kind.is_scope() {
            span.start >= parent.start && end <= parent_end
        } else {
            end >= parent.start && end <= parent_end
        };
        if !contained {
            report.violations.push(format!(
                "span {} '{}' [{:?}, {end:?}] escapes parent {} '{}' [{:?}, {parent_end:?}]",
                span.id.0, span.name, span.start, parent.id.0, parent.name, parent.start
            ));
        }
    }

    // 3 + 4. Per-track device-op serialization and busy ≤ elapsed.
    let trace_end = spans
        .iter()
        .filter_map(|s| s.end)
        .max()
        .unwrap_or(SimTime::ZERO);
    let mut per_track: BTreeMap<&str, Vec<(&Span, SimTime)>> = BTreeMap::new();
    for span in spans {
        if span.kind == SpanKind::DeviceOp {
            if let Some(end) = span.end {
                per_track
                    .entry(span.track.as_str())
                    .or_default()
                    .push((span, end));
            }
        }
    }
    for (track, ops) in &per_track {
        let mut busy = Duration::ZERO;
        for pair in ops.windows(2) {
            report.checks += 1;
            let ((a, a_end), (b, _)) = (pair[0], pair[1]);
            if b.start < a.start {
                report.violations.push(format!(
                    "track '{track}': op {} at {:?} recorded after later op {} at {:?}",
                    b.id.0, b.start, a.id.0, a.start
                ));
            }
            if b.start < a_end {
                report.violations.push(format!(
                    "track '{track}': ops {} and {} overlap ({:?} < {:?})",
                    a.id.0, b.id.0, b.start, a_end
                ));
            }
        }
        for (op, end) in ops {
            busy += end.duration_since(op.start);
        }
        report.checks += 1;
        if busy > trace_end.duration_since(SimTime::ZERO) {
            report.violations.push(format!(
                "track '{track}': busy {busy:?} exceeds elapsed {:?}",
                trace_end.duration_since(SimTime::ZERO)
            ));
        }
    }

    // 5. Step conservation: per (scope parent, track), clamped child
    // device-op time fits in the scope.
    let mut per_scope_track: BTreeMap<(usize, &str), Duration> = BTreeMap::new();
    for span in spans {
        if span.kind != SpanKind::DeviceOp {
            continue;
        }
        let (Some(end), Some(parent_id)) = (span.end, span.parent) else {
            continue;
        };
        let parent = &spans[parent_id.0];
        let Some(parent_end) = parent.end else {
            continue;
        };
        let clamped = overlap(span.start, end, parent.start, parent_end);
        *per_scope_track
            .entry((parent_id.0, span.track.as_str()))
            .or_default() += clamped;
    }
    for ((parent_idx, track), total) in &per_scope_track {
        report.checks += 1;
        let parent = &spans[*parent_idx];
        if *total > parent.duration() {
            report.violations.push(format!(
                "scope {} '{}': device-op time {total:?} on track '{track}' exceeds \
                 scope duration {:?}",
                parent.id.0,
                parent.name,
                parent.duration()
            ));
        }
    }

    // 6. Plan spans are zero-width markers: planning happens before the
    // virtual clock starts.
    for span in spans {
        if span.kind != SpanKind::Plan {
            continue;
        }
        let Some(end) = span.end else {
            continue; // open spans already reported
        };
        report.checks += 1;
        if end != span.start {
            report.violations.push(format!(
                "plan span {} '{}' has nonzero width [{:?}, {end:?}]",
                span.id.0, span.name, span.start
            ));
        }
    }

    // 7. Profiled-run conservation: per query span, the summed duration
    // of its direct scope-kind children (the operator spans) fits inside
    // the query's elapsed time — operators of one query run sequentially.
    for query in spans {
        if query.kind != SpanKind::Query || query.end.is_none() {
            continue;
        }
        let mut child_time = Duration::ZERO;
        for child in spans {
            if child.parent != Some(query.id) || !child.kind.is_scope() {
                continue;
            }
            if let Some(end) = child.end {
                child_time += end.saturating_duration_since(child.start);
            }
        }
        report.checks += 1;
        if child_time > query.duration() {
            report.violations.push(format!(
                "query {} '{}': operator time {child_time:?} exceeds query elapsed {:?}",
                query.id.0,
                query.name,
                query.duration()
            ));
        }
    }

    report
}

/// Total duration of all `fault` spans in the recorder.
pub fn fault_time(rec: &Recorder) -> Duration {
    rec.spans()
        .iter()
        .filter(|s| s.kind == SpanKind::Fault)
        .map(Span::duration)
        .sum()
}

/// Check the fault-conservation invariant: the summed duration of `fault`
/// spans equals `expected` (the `FaultSummary::retry_time` a run
/// reported). Disabled recorders pass trivially only when `expected` is
/// zero-checked by the caller; here a disabled recorder with nonzero
/// `expected` fails, which is what the test suites want.
pub fn check_fault_time(rec: &Recorder, expected: Duration) -> Result<(), String> {
    let traced = fault_time(rec);
    if traced == expected {
        Ok(())
    } else {
        Err(format!(
            "fault conservation violated: spans total {traced:?}, summary reports {expected:?}"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanId;

    fn span(
        id: usize,
        parent: Option<usize>,
        kind: SpanKind,
        track: &str,
        start: u64,
        end: Option<u64>,
    ) -> Span {
        Span {
            id: SpanId(id),
            parent: parent.map(SpanId),
            kind,
            track: track.into(),
            name: format!("s{id}"),
            start: SimTime::from_nanos(start),
            end: end.map(SimTime::from_nanos),
            attrs: Vec::new(),
        }
    }

    #[test]
    fn clean_tree_passes() {
        let spans = vec![
            span(0, None, SpanKind::Join, "join", 0, Some(100)),
            span(1, Some(0), SpanKind::Step, "join", 0, Some(60)),
            span(2, Some(1), SpanKind::DeviceOp, "tape", 0, Some(30)),
            span(3, Some(1), SpanKind::DeviceOp, "tape", 30, Some(55)),
            span(4, Some(0), SpanKind::Step, "join", 60, Some(100)),
            span(5, Some(4), SpanKind::DeviceOp, "disk", 60, Some(90)),
        ];
        let rep = audit_spans(&spans);
        rep.assert_ok();
        assert!(rep.checks > 6);
    }

    #[test]
    fn open_span_is_flagged() {
        let spans = vec![span(0, None, SpanKind::Join, "join", 0, None)];
        let rep = audit_spans(&spans);
        assert!(!rep.is_ok());
        assert!(rep.violations[0].contains("left open"));
    }

    #[test]
    fn scope_escaping_parent_is_flagged() {
        let spans = vec![
            span(0, None, SpanKind::Join, "join", 10, Some(50)),
            span(1, Some(0), SpanKind::Step, "join", 5, Some(40)),
        ];
        assert!(audit_spans(&spans)
            .violations
            .iter()
            .any(|v| v.contains("escapes parent")));
    }

    #[test]
    fn leaf_may_start_before_parent_but_not_finish_after() {
        // Prefetch issued before the step opened: fine.
        let ok = vec![
            span(0, None, SpanKind::Step, "join", 10, Some(50)),
            span(1, Some(0), SpanKind::DeviceOp, "tape", 5, Some(20)),
        ];
        audit_spans(&ok).assert_ok();
        // Completing after the parent closed is a bug.
        let bad = vec![
            span(0, None, SpanKind::Step, "join", 10, Some(50)),
            span(1, Some(0), SpanKind::DeviceOp, "tape", 20, Some(60)),
        ];
        assert!(!audit_spans(&bad).is_ok());
    }

    #[test]
    fn overlapping_device_ops_are_flagged() {
        let spans = vec![
            span(0, None, SpanKind::DeviceOp, "tape", 0, Some(30)),
            span(1, None, SpanKind::DeviceOp, "tape", 20, Some(40)),
        ];
        assert!(audit_spans(&spans)
            .violations
            .iter()
            .any(|v| v.contains("overlap")));
        // Same intervals on different tracks: fine (devices overlap).
        let spans = vec![
            span(0, None, SpanKind::DeviceOp, "tape", 0, Some(30)),
            span(1, None, SpanKind::DeviceOp, "disk", 20, Some(40)),
        ];
        audit_spans(&spans).assert_ok();
    }

    #[test]
    fn step_conservation_clamps_straddling_ops() {
        // An op straddling the step boundary only charges its overlap, so
        // this passes even though the op's full length exceeds the step.
        let spans = vec![
            span(0, None, SpanKind::Step, "join", 10, Some(20)),
            span(1, Some(0), SpanKind::DeviceOp, "tape", 0, Some(20)),
        ];
        audit_spans(&spans).assert_ok();
        // But two full-length ops in one 10 ns step cannot fit (they also
        // overlap, which reports separately).
        let spans = vec![
            span(0, None, SpanKind::Step, "join", 10, Some(20)),
            span(1, Some(0), SpanKind::DeviceOp, "tape", 10, Some(20)),
            span(2, Some(0), SpanKind::DeviceOp, "tape", 10, Some(20)),
        ];
        assert!(audit_spans(&spans)
            .violations
            .iter()
            .any(|v| v.contains("exceeds scope duration")));
    }

    #[test]
    fn plan_spans_must_be_zero_width() {
        let ok = vec![span(0, None, SpanKind::Plan, "sql", 0, Some(0))];
        audit_spans(&ok).assert_ok();
        let bad = vec![span(0, None, SpanKind::Plan, "sql", 0, Some(5))];
        assert!(audit_spans(&bad)
            .violations
            .iter()
            .any(|v| v.contains("nonzero width")));
    }

    #[test]
    fn query_operator_time_must_fit_query_elapsed() {
        // Two sequential operator scopes inside the query: fine.
        let ok = vec![
            span(0, None, SpanKind::Query, "sql", 0, Some(100)),
            span(1, Some(0), SpanKind::Scope, "sql", 0, Some(60)),
            span(2, Some(0), SpanKind::Scope, "sql", 60, Some(100)),
        ];
        audit_spans(&ok).assert_ok();
        // Nested scopes summing past the query's elapsed time: flagged,
        // even though each child individually nests correctly.
        let bad = vec![
            span(0, None, SpanKind::Query, "sql", 0, Some(100)),
            span(1, Some(0), SpanKind::Scope, "sql", 0, Some(80)),
            span(2, Some(0), SpanKind::Scope, "sql", 40, Some(100)),
        ];
        assert!(audit_spans(&bad)
            .violations
            .iter()
            .any(|v| v.contains("operator time")));
    }

    #[test]
    fn fault_time_sums_fault_spans_only() {
        let spans = [
            span(0, None, SpanKind::DeviceOp, "tape", 0, Some(100)),
            span(1, None, SpanKind::Fault, "tape", 10, Some(30)),
            span(2, None, SpanKind::Fault, "tape", 50, Some(55)),
        ];
        let rec = Recorder::enabled();
        // No public constructor from raw spans; reuse audit_spans-style
        // arithmetic directly on the slice instead.
        let total: Duration = spans
            .iter()
            .filter(|s| s.kind == SpanKind::Fault)
            .map(Span::duration)
            .sum();
        assert_eq!(total, Duration::from_nanos(25));
        assert_eq!(fault_time(&rec), Duration::ZERO);
        assert!(check_fault_time(&rec, Duration::ZERO).is_ok());
        assert!(check_fault_time(&rec, Duration::from_nanos(1)).is_err());
    }
}
