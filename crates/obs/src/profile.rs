//! `QueryProfile` — the stable per-operator profile emitted by
//! `EXPLAIN ANALYZE` and the programmatic `profile_query` API.
//!
//! A profile records, for every operator of an executed physical plan,
//! the planner's estimated cardinality next to the observed one (with
//! the standard Q-error), the virtual service time split into tape /
//! disk / CPU from span attribution, the chosen join method next to the
//! priced runner-ups, and the fault / retry / restart counters carried
//! by `JoinStats`. Scan operators additionally carry the observed key
//! statistics (distinct count, heavy-hitter fraction, fitted Zipf-θ)
//! that `Catalog::absorb_profile` feeds back into the planner.
//!
//! The JSON encoding is hand-rolled (like the Perfetto exporter) and
//! validated by [`validate_query_profile_json`]; the field names live in
//! one registry ([`PROFILE_FIELDS`]) that lint rule L8 cross-checks
//! against the struct definitions here and the `BENCH_8.json` emitter.

use crate::json::{self, Json};
use std::collections::BTreeMap;

/// Top-level keys of the `QueryProfile` JSON object, in emit order.
pub const QUERY_FIELDS: &[&str] = &[
    "sql",
    "mode",
    "join_order",
    "est_join_seconds",
    "actual_join_seconds",
    "operators",
];

/// Keys of each member of the `operators` array, in emit order.
pub const OPERATOR_FIELDS: &[&str] = &[
    "op",
    "label",
    "est_rows",
    "actual_rows",
    "q_error",
    "method",
    "expected_seconds",
    "actual_seconds",
    "tape_seconds",
    "disk_seconds",
    "cpu_seconds",
    "alternatives",
    "faults",
    "fault_retries",
    "restarts",
    "work_salvaged_bytes",
    "table",
    "distinct_keys",
    "heavy_fraction",
    "zipf_theta",
    "filtered",
];

/// The single field registry for the `QueryProfile` schema: every field
/// name that appears in the JSON encoding, query-level keys first, then
/// operator-level keys. Lint rule L8 checks that this list, the struct
/// fields of [`QueryProfile`] / [`OperatorProfile`], and the mirrored
/// registry in the `BENCH_8.json` emitter all agree.
pub const PROFILE_FIELDS: &[&str] = &[
    "sql",
    "mode",
    "join_order",
    "est_join_seconds",
    "actual_join_seconds",
    "operators",
    "op",
    "label",
    "est_rows",
    "actual_rows",
    "q_error",
    "method",
    "expected_seconds",
    "actual_seconds",
    "tape_seconds",
    "disk_seconds",
    "cpu_seconds",
    "alternatives",
    "faults",
    "fault_retries",
    "restarts",
    "work_salvaged_bytes",
    "table",
    "distinct_keys",
    "heavy_fraction",
    "zipf_theta",
    "filtered",
];

/// The Q-error of a cardinality estimate: `max(est/actual, actual/est)`,
/// with both sides floored at half a row so an exact estimate (including
/// the both-empty case) is exactly 1.0 and the measure is always ≥ 1.0.
pub fn q_error(est_rows: f64, actual_rows: u64) -> f64 {
    let est = est_rows.max(0.5);
    let act = (actual_rows as f64).max(0.5);
    (est / act).max(act / est)
}

/// A priced runner-up join method the planner considered but rejected.
#[derive(Debug, Clone, PartialEq)]
pub struct Alternative {
    /// Method abbreviation (e.g. `"CDT-NB/MB"`).
    pub method: String,
    /// The planner's expected virtual seconds had this method run.
    pub expected_seconds: f64,
}

/// Plan-vs-actual measurements for one operator of an executed plan.
#[derive(Debug, Clone, PartialEq)]
pub struct OperatorProfile {
    /// Operator kind: `"scan"`, `"join"`, `"filter"`, `"project"`,
    /// `"sort"`, or `"limit"`.
    pub op: String,
    /// Human-readable operator label, mirroring `EXPLAIN` output.
    pub label: String,
    /// The planner's estimated output cardinality.
    pub est_rows: f64,
    /// The observed output cardinality.
    pub actual_rows: u64,
    /// `q_error(est_rows, actual_rows)`, always ≥ 1.0.
    pub q_error: f64,
    /// Chosen join method abbreviation; `None` for non-join operators.
    pub method: Option<String>,
    /// The planner's expected virtual seconds (joins; 0 otherwise).
    pub expected_seconds: f64,
    /// Observed virtual seconds attributed to this operator.
    pub actual_seconds: f64,
    /// Portion of `actual_seconds` spent in tape device-ops.
    pub tape_seconds: f64,
    /// Portion of `actual_seconds` spent in disk device-ops.
    pub disk_seconds: f64,
    /// Residual host time: `actual - tape - disk`, clamped at zero.
    pub cpu_seconds: f64,
    /// Priced runner-up methods, cheapest first (joins only).
    pub alternatives: Vec<Alternative>,
    /// Device faults observed while this operator ran.
    pub faults: u64,
    /// Retries issued to absorb transient faults.
    pub fault_retries: u64,
    /// Mid-join restarts (checkpoint resumes) this operator survived.
    pub restarts: u64,
    /// Bytes of partial output salvaged across those restarts.
    pub work_salvaged_bytes: u64,
    /// Base table name for scans; `None` otherwise.
    pub table: Option<String>,
    /// Observed distinct join-key count (unfiltered scans only).
    pub distinct_keys: u64,
    /// Observed heavy-hitter key fraction (unfiltered scans only).
    pub heavy_fraction: f64,
    /// Zipf-θ fitted to the observed key frequencies (unfiltered scans).
    pub zipf_theta: f64,
    /// True when a pushed-down predicate or limit conditioned this
    /// operator's output, making its observed stats unsafe to learn.
    pub filtered: bool,
}

/// A full per-operator profile of one executed query.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryProfile {
    /// Canonical SQL text of the profiled statement.
    pub sql: String,
    /// Planner mode: `"cost-based"` or `"syntactic"`.
    pub mode: String,
    /// Join order chosen by the planner (table names, build-side first).
    pub join_order: Vec<String>,
    /// The planner's expected total join seconds for the plan.
    pub est_join_seconds: f64,
    /// Observed total join seconds (sum of join-stage responses).
    pub actual_join_seconds: f64,
    /// Per-operator measurements in preorder (parent before children).
    pub operators: Vec<OperatorProfile>,
}

fn num(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

fn opt_str(v: &Option<String>) -> String {
    match v {
        Some(s) => format!("\"{}\"", json::escape(s)),
        None => "null".to_string(),
    }
}

impl QueryProfile {
    /// Render the profile as its stable JSON document.
    pub fn to_json(&self) -> String {
        let order = self
            .join_order
            .iter()
            .map(|t| format!("\"{}\"", json::escape(t)))
            .collect::<Vec<_>>()
            .join(", ");
        let ops = self
            .operators
            .iter()
            .map(|op| format!("    {}", op.to_json()))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"sql\": \"{}\",\n  \"mode\": \"{}\",\n  \"join_order\": [{order}],\n  \
             \"est_join_seconds\": {},\n  \"actual_join_seconds\": {},\n  \
             \"operators\": [\n{ops}\n  ]\n}}\n",
            json::escape(&self.sql),
            json::escape(&self.mode),
            num(self.est_join_seconds),
            num(self.actual_join_seconds),
        )
    }

    /// Parse a profile back from its JSON encoding. Accepts exactly the
    /// documents [`QueryProfile::to_json`] produces (and any other JSON
    /// carrying the same fields); round-trips losslessly for finite
    /// numbers.
    pub fn from_json(doc: &str) -> Result<QueryProfile, String> {
        let parsed = json::parse(doc)?;
        let obj = parsed.as_obj().ok_or("profile is not a JSON object")?;
        let operators = req(obj, "operators")?
            .as_arr()
            .ok_or("'operators' is not an array")?
            .iter()
            .enumerate()
            .map(|(i, op)| {
                OperatorProfile::from_value(op).map_err(|e| format!("operator {i}: {e}"))
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(QueryProfile {
            sql: str_field(obj, "sql")?,
            mode: str_field(obj, "mode")?,
            join_order: req(obj, "join_order")?
                .as_arr()
                .ok_or("'join_order' is not an array")?
                .iter()
                .map(|t| {
                    t.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| "'join_order' member is not a string".to_string())
                })
                .collect::<Result<Vec<_>, String>>()?,
            est_join_seconds: num_field(obj, "est_join_seconds")?,
            actual_join_seconds: num_field(obj, "actual_join_seconds")?,
            operators,
        })
    }
}

impl OperatorProfile {
    fn to_json(&self) -> String {
        let alts = self
            .alternatives
            .iter()
            .map(|a| {
                format!(
                    "{{\"method\": \"{}\", \"expected_seconds\": {}}}",
                    json::escape(&a.method),
                    num(a.expected_seconds)
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        format!(
            "{{\"op\": \"{}\", \"label\": \"{}\", \"est_rows\": {}, \"actual_rows\": {}, \
             \"q_error\": {}, \"method\": {}, \"expected_seconds\": {}, \"actual_seconds\": {}, \
             \"tape_seconds\": {}, \"disk_seconds\": {}, \"cpu_seconds\": {}, \
             \"alternatives\": [{alts}], \"faults\": {}, \"fault_retries\": {}, \
             \"restarts\": {}, \"work_salvaged_bytes\": {}, \"table\": {}, \
             \"distinct_keys\": {}, \"heavy_fraction\": {}, \"zipf_theta\": {}, \
             \"filtered\": {}}}",
            json::escape(&self.op),
            json::escape(&self.label),
            num(self.est_rows),
            self.actual_rows,
            num(self.q_error),
            opt_str(&self.method),
            num(self.expected_seconds),
            num(self.actual_seconds),
            num(self.tape_seconds),
            num(self.disk_seconds),
            num(self.cpu_seconds),
            self.faults,
            self.fault_retries,
            self.restarts,
            self.work_salvaged_bytes,
            opt_str(&self.table),
            self.distinct_keys,
            num(self.heavy_fraction),
            num(self.zipf_theta),
            self.filtered,
        )
    }

    fn from_value(v: &Json) -> Result<OperatorProfile, String> {
        let obj = v.as_obj().ok_or("not a JSON object")?;
        let alternatives = req(obj, "alternatives")?
            .as_arr()
            .ok_or("'alternatives' is not an array")?
            .iter()
            .map(|a| {
                let alt = a.as_obj().ok_or("alternative is not an object")?;
                Ok(Alternative {
                    method: str_field(alt, "method")?,
                    expected_seconds: num_field(alt, "expected_seconds")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        Ok(OperatorProfile {
            op: str_field(obj, "op")?,
            label: str_field(obj, "label")?,
            est_rows: num_field(obj, "est_rows")?,
            actual_rows: num_field(obj, "actual_rows")? as u64,
            q_error: num_field(obj, "q_error")?,
            method: opt_str_field(obj, "method")?,
            expected_seconds: num_field(obj, "expected_seconds")?,
            actual_seconds: num_field(obj, "actual_seconds")?,
            tape_seconds: num_field(obj, "tape_seconds")?,
            disk_seconds: num_field(obj, "disk_seconds")?,
            cpu_seconds: num_field(obj, "cpu_seconds")?,
            alternatives,
            faults: num_field(obj, "faults")? as u64,
            fault_retries: num_field(obj, "fault_retries")? as u64,
            restarts: num_field(obj, "restarts")? as u64,
            work_salvaged_bytes: num_field(obj, "work_salvaged_bytes")? as u64,
            table: opt_str_field(obj, "table")?,
            distinct_keys: num_field(obj, "distinct_keys")? as u64,
            heavy_fraction: num_field(obj, "heavy_fraction")?,
            zipf_theta: num_field(obj, "zipf_theta")?,
            filtered: bool_field(obj, "filtered")?,
        })
    }
}

fn req<'a>(obj: &'a BTreeMap<String, Json>, key: &str) -> Result<&'a Json, String> {
    obj.get(key).ok_or_else(|| format!("missing '{key}' key"))
}

fn str_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<String, String> {
    req(obj, key)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("'{key}' is not a string"))
}

fn opt_str_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<Option<String>, String> {
    match req(obj, key)? {
        Json::Null => Ok(None),
        Json::Str(s) => Ok(Some(s.clone())),
        _ => Err(format!("'{key}' is neither a string nor null")),
    }
}

fn num_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<f64, String> {
    req(obj, key)?
        .as_num()
        .ok_or_else(|| format!("'{key}' is not a number"))
}

fn bool_field(obj: &BTreeMap<String, Json>, key: &str) -> Result<bool, String> {
    match req(obj, key)? {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("'{key}' is not a boolean")),
    }
}

/// Validate a `QueryProfile` JSON document against the schema: every
/// query-level key of [`QUERY_FIELDS`] present with the right type, and
/// every member of `operators` carrying every key of
/// [`OPERATOR_FIELDS`]. Q-errors must be ≥ 1.0 and the virtual-time
/// split must not exceed the operator's total. Returns the number of
/// operators on success.
pub fn validate_query_profile_json(doc: &str) -> Result<usize, String> {
    let parsed = json::parse(doc)?;
    validate_query_profile_value(&parsed)
}

/// [`validate_query_profile_json`] over an already-parsed [`Json`]
/// value — for validating profiles embedded inside a larger document
/// (the `BENCH_8.json` envelope).
pub fn validate_query_profile_value(parsed: &Json) -> Result<usize, String> {
    let obj = parsed.as_obj().ok_or("profile is not a JSON object")?;
    for key in QUERY_FIELDS {
        req(obj, key)?;
    }
    str_field(obj, "sql")?;
    str_field(obj, "mode")?;
    req(obj, "join_order")?
        .as_arr()
        .ok_or("'join_order' is not an array")?;
    for key in ["est_join_seconds", "actual_join_seconds"] {
        let v = num_field(obj, key)?;
        if !v.is_finite() || v < 0.0 {
            return Err(format!("'{key}' = {v} is invalid"));
        }
    }
    let ops = req(obj, "operators")?
        .as_arr()
        .ok_or("'operators' is not an array")?;
    for (i, op) in ops.iter().enumerate() {
        let obj = op
            .as_obj()
            .ok_or_else(|| format!("operator {i} is not an object"))?;
        for key in OPERATOR_FIELDS {
            req(obj, key).map_err(|e| format!("operator {i}: {e}"))?;
        }
        let parsed = OperatorProfile::from_value(op).map_err(|e| format!("operator {i}: {e}"))?;
        if parsed.q_error.is_nan() || parsed.q_error < 1.0 {
            return Err(format!("operator {i}: q_error {} < 1.0", parsed.q_error));
        }
        let split = parsed.tape_seconds + parsed.disk_seconds + parsed.cpu_seconds;
        if split > parsed.actual_seconds + 1e-6 {
            return Err(format!(
                "operator {i}: time split {split} exceeds actual_seconds {}",
                parsed.actual_seconds
            ));
        }
    }
    Ok(ops.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn field_registry_is_the_query_and_operator_keys() {
        let joined: Vec<&str> = QUERY_FIELDS
            .iter()
            .chain(OPERATOR_FIELDS.iter())
            .copied()
            .collect();
        assert_eq!(PROFILE_FIELDS, joined.as_slice());
    }

    #[test]
    fn q_error_basics() {
        assert!(q_error(10.0, 100) > 9.9);
        assert!(q_error(100.0, 10) > 9.9);
        // Exact feedback and the both-empty case are exactly 1.0.
        assert!((q_error(42.0, 42) - 1.0).abs() < f64::EPSILON);
        assert!((q_error(0.0, 0) - 1.0).abs() < f64::EPSILON);
        // Estimating zero rows for a non-empty output is finite.
        assert!(q_error(0.0, 7).is_finite());
    }

    fn sample() -> QueryProfile {
        QueryProfile {
            sql: "SELECT * FROM r JOIN s ON r.key = s.key".to_string(),
            mode: "cost-based".to_string(),
            join_order: vec!["r".to_string(), "s".to_string()],
            est_join_seconds: 8.5,
            actual_join_seconds: 9.25,
            operators: vec![
                OperatorProfile {
                    op: "join".to_string(),
                    label: "TertiaryJoin [CAP] on r.key = s.key".to_string(),
                    est_rows: 950.0,
                    actual_rows: 1000,
                    q_error: q_error(950.0, 1000),
                    method: Some("CAP".to_string()),
                    expected_seconds: 8.5,
                    actual_seconds: 9.25,
                    tape_seconds: 5.0,
                    disk_seconds: 3.0,
                    cpu_seconds: 1.25,
                    alternatives: vec![Alternative {
                        method: "DT-NB".to_string(),
                        expected_seconds: 12.0,
                    }],
                    faults: 2,
                    fault_retries: 2,
                    restarts: 1,
                    work_salvaged_bytes: 4096,
                    table: None,
                    distinct_keys: 0,
                    heavy_fraction: 0.0,
                    zipf_theta: 0.0,
                    filtered: false,
                },
                OperatorProfile {
                    op: "scan".to_string(),
                    label: "Scan r".to_string(),
                    est_rows: 512.0,
                    actual_rows: 512,
                    q_error: 1.0,
                    method: None,
                    expected_seconds: 0.0,
                    actual_seconds: 0.0,
                    tape_seconds: 0.0,
                    disk_seconds: 0.0,
                    cpu_seconds: 0.0,
                    alternatives: Vec::new(),
                    faults: 0,
                    fault_retries: 0,
                    restarts: 0,
                    work_salvaged_bytes: 0,
                    table: Some("r".to_string()),
                    distinct_keys: 128,
                    heavy_fraction: 0.25,
                    zipf_theta: 1.1,
                    filtered: false,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_and_validates() {
        let profile = sample();
        let doc = profile.to_json();
        assert_eq!(validate_query_profile_json(&doc), Ok(2));
        let back = QueryProfile::from_json(&doc).unwrap();
        assert_eq!(back, profile);
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_query_profile_json("[]").is_err());
        let profile = sample();
        // Dropping any registry key must fail validation.
        let doc = profile.to_json();
        let broken = doc.replace("\"q_error\"", "\"q_err\"");
        assert!(validate_query_profile_json(&broken).is_err());
        // A sub-1.0 Q-error is a contradiction in terms.
        let mut bad = profile.clone();
        bad.operators[1].q_error = 0.5;
        assert!(validate_query_profile_json(&bad.to_json())
            .unwrap_err()
            .contains("q_error"));
        // The device split may not exceed the operator total.
        let mut bad = profile;
        bad.operators[0].tape_seconds = 100.0;
        assert!(validate_query_profile_json(&bad.to_json())
            .unwrap_err()
            .contains("split"));
    }
}
