//! Metrics registry: monotonic counters, gauges, and fixed-bucket
//! histograms, keyed by `(name, device, method, phase)`.
//!
//! The registry subsumes the ad-hoc accounting that previously lived only
//! in `TapeStats` / `DiskStats` / `FleetMetrics`: device models and join
//! drivers export their counters here under one naming scheme, so a single
//! dump covers a whole run regardless of which layer produced a number.
//! All maps are ordered (`BTreeMap`), so exports are deterministic.
//!
//! lint:allow-file(L9, recorder-local registries; parallel runs fork per-worker recorders and merge deterministically)

use std::cell::RefCell;
use std::collections::BTreeMap;

/// Identifies one metric instance. `device`, `method`, and `phase` are
/// optional label dimensions; `None` means "not applicable", not "all".
#[derive(Clone, Debug, Default, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    /// Metric name, dot-separated (`"tape.blocks_read"`).
    pub name: String,
    /// Device the sample came from (`"tape-R"`, `"disk-array"`).
    pub device: Option<String>,
    /// Join method (`"CDT-GH"`).
    pub method: Option<String>,
    /// Execution phase (`"step1"`, `"step2"`).
    pub phase: Option<String>,
}

impl MetricKey {
    /// A key with just a name.
    pub fn new(name: impl Into<String>) -> Self {
        MetricKey {
            name: name.into(),
            ..MetricKey::default()
        }
    }

    /// Set the device label.
    pub fn device(mut self, device: impl Into<String>) -> Self {
        self.device = Some(device.into());
        self
    }

    /// Set the method label.
    pub fn method(mut self, method: impl Into<String>) -> Self {
        self.method = Some(method.into());
        self
    }

    /// Set the phase label.
    pub fn phase(mut self, phase: impl Into<String>) -> Self {
        self.phase = Some(phase.into());
        self
    }

    /// `name{device=..,method=..,phase=..}` rendering for dumps.
    pub fn render(&self) -> String {
        let mut labels = Vec::new();
        if let Some(d) = &self.device {
            labels.push(format!("device={d}"));
        }
        if let Some(m) = &self.method {
            labels.push(format!("method={m}"));
        }
        if let Some(p) = &self.phase {
            labels.push(format!("phase={p}"));
        }
        if labels.is_empty() {
            self.name.clone()
        } else {
            format!("{}{{{}}}", self.name, labels.join(","))
        }
    }
}

/// A fixed-bucket histogram over `u64` samples (typically nanoseconds).
///
/// Bucket `i` counts samples `<= bounds[i]` (and above `bounds[i-1]`); an
/// implicit overflow bucket counts samples above the last bound.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket counts; `counts.len() == bounds.len() + 1` (overflow
    /// bucket last).
    pub counts: Vec<u64>,
    /// Total of all samples.
    pub sum: u64,
    /// Number of samples.
    pub count: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
}

/// Default bounds for virtual-time histograms: exponential from 1 µs to
/// ~4.4 h in powers of four (13 buckets + overflow).
pub fn default_time_bounds() -> Vec<u64> {
    let mut bounds = Vec::with_capacity(13);
    let mut b: u64 = 1_000; // 1 µs in ns
    for _ in 0..13 {
        bounds.push(b);
        b = b.saturating_mul(4);
    }
    bounds
}

impl Histogram {
    /// An empty histogram with the given bucket bounds (must be strictly
    /// increasing and non-empty).
    pub fn new(bounds: Vec<u64>) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let n = bounds.len();
        Histogram {
            bounds,
            counts: vec![0; n + 1],
            sum: 0,
            count: 0,
            min: 0,
            max: 0,
        }
    }

    /// Record one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = self
            .bounds
            .partition_point(|&b| b < value)
            .min(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
    }

    /// Mean sample (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimate quantile `q` in `[0, 1]` from the buckets: returns the
    /// upper bound of the bucket holding the nearest-rank sample (`max`
    /// for the overflow bucket, 0 when empty).
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }
}

/// Nearest-rank quantile over a **sorted** slice: the smallest element
/// such that at least `ceil(q * n)` elements are `<=` it. Returns `None`
/// for an empty slice. `q` is clamped to `[0, 1]`.
///
/// This is the one quantile definition shared by the scheduler's response
/// percentiles and the histogram estimator, so p50/p95/p99 mean the same
/// thing everywhere.
pub fn nearest_rank<T: Copy>(sorted: &[T], q: f64) -> Option<T> {
    if sorted.is_empty() {
        return None;
    }
    let n = sorted.len();
    let q = q.clamp(0.0, 1.0);
    let idx = ((q * n as f64).ceil() as usize).clamp(1, n) - 1;
    Some(sorted[idx])
}

/// Deterministically ordered collections of counters, gauges, and
/// histograms.
#[derive(Default)]
pub struct MetricsRegistry {
    counters: RefCell<BTreeMap<MetricKey, u64>>,
    gauges: RefCell<BTreeMap<MetricKey, f64>>,
    histograms: RefCell<BTreeMap<MetricKey, Histogram>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Add `delta` to a monotonic counter (created at 0 on first use).
    pub fn counter_add(&self, key: MetricKey, delta: u64) {
        *self.counters.borrow_mut().entry(key).or_insert(0) += delta;
    }

    /// Current counter value (0 if never touched).
    pub fn counter(&self, key: &MetricKey) -> u64 {
        self.counters.borrow().get(key).copied().unwrap_or(0)
    }

    /// Set a gauge to `value`.
    pub fn gauge_set(&self, key: MetricKey, value: f64) {
        self.gauges.borrow_mut().insert(key, value);
    }

    /// Current gauge value, if ever set.
    pub fn gauge(&self, key: &MetricKey) -> Option<f64> {
        self.gauges.borrow().get(key).copied()
    }

    /// Record a sample into the histogram for `key`, creating it with
    /// [`default_time_bounds`] on first use.
    pub fn observe(&self, key: MetricKey, value: u64) {
        self.histograms
            .borrow_mut()
            .entry(key)
            .or_insert_with(|| Histogram::new(default_time_bounds()))
            .observe(value);
    }

    /// Snapshot of the histogram for `key`, if any.
    pub fn histogram(&self, key: &MetricKey) -> Option<Histogram> {
        self.histograms.borrow().get(key).cloned()
    }

    /// Snapshot every metric, sorted by key.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            gauges: self
                .gauges
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), *v))
                .collect(),
            histograms: self
                .histograms
                .borrow()
                .iter()
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A point-in-time, sorted copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counters, sorted by key.
    pub counters: Vec<(MetricKey, u64)>,
    /// Gauges, sorted by key.
    pub gauges: Vec<(MetricKey, f64)>,
    /// Histograms, sorted by key.
    pub histograms: Vec<(MetricKey, Histogram)>,
}

impl MetricsSnapshot {
    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_round_trip() {
        let reg = MetricsRegistry::new();
        let k = MetricKey::new("tape.blocks_read").device("tape-R");
        reg.counter_add(k.clone(), 3);
        reg.counter_add(k.clone(), 4);
        assert_eq!(reg.counter(&k), 7);
        assert_eq!(reg.counter(&MetricKey::new("missing")), 0);
        let g = MetricKey::new("buffer.occupancy").phase("step1");
        reg.gauge_set(g.clone(), 0.5);
        reg.gauge_set(g.clone(), 0.75);
        assert_eq!(reg.gauge(&g), Some(0.75));
        let snap = reg.snapshot();
        assert_eq!(snap.counters.len(), 1);
        assert_eq!(snap.gauges.len(), 1);
    }

    #[test]
    fn key_render_includes_labels_in_fixed_order() {
        let k = MetricKey::new("x")
            .phase("step2")
            .device("d0")
            .method("TT-GH");
        assert_eq!(k.render(), "x{device=d0,method=TT-GH,phase=step2}");
        assert_eq!(MetricKey::new("bare").render(), "bare");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let mut h = Histogram::new(vec![10, 100, 1000]);
        for v in [1, 5, 10, 11, 100, 5000] {
            h.observe(v);
        }
        assert_eq!(h.counts, vec![3, 2, 0, 1]);
        assert_eq!(h.count, 6);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 5000);
        assert_eq!(h.quantile(0.5), 10); // 3rd of 6 lands in first bucket
        assert_eq!(h.quantile(1.0), 5000); // overflow bucket reports max
        assert_eq!(Histogram::new(vec![1]).quantile(0.5), 0);
    }

    #[test]
    fn nearest_rank_matches_definition() {
        let v = [10u64, 20, 30, 40, 50];
        assert_eq!(nearest_rank(&v, 0.0), Some(10));
        assert_eq!(nearest_rank(&v, 0.5), Some(30));
        assert_eq!(nearest_rank(&v, 0.9), Some(50));
        assert_eq!(nearest_rank(&v, 1.0), Some(50));
        assert_eq!(nearest_rank::<u64>(&[], 0.5), None);
        // Ties are handled by rank, not by value.
        assert_eq!(nearest_rank(&[7u64, 7, 7, 100], 0.75), Some(7));
    }

    #[test]
    fn default_bounds_are_increasing() {
        let b = default_time_bounds();
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(b[0], 1_000);
    }
}
