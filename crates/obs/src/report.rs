//! Text rendering of a span stream: per-track ASCII Gantt rows.
//!
//! This replaces walking per-device activity logs directly:
//! anything that records through the [`Recorder`] — device ops from
//! instrumented servers, fault-recovery spans — renders here with no
//! extra plumbing per device.

use tapejoin_sim::{Duration, SimTime};

use crate::span::{Recorder, Span, SpanKind};

/// One rendered timeline row.
#[derive(Clone, Debug, PartialEq)]
pub struct TrackRow {
    /// Track name (device).
    pub track: String,
    /// `width` cells: `#` busy, `!` fault recovery, `.` idle.
    pub cells: String,
    /// Total busy (device-op) time on the track.
    pub busy: Duration,
}

/// Latest end instant over all closed spans (`SimTime::ZERO` when empty).
pub fn trace_end(rec: &Recorder) -> SimTime {
    rec.spans()
        .iter()
        .filter_map(|s| s.end)
        .max()
        .unwrap_or(SimTime::ZERO)
}

fn paint(cells: &mut [char], span: &Span, scale: f64, mark: char) {
    let width = cells.len();
    let Some(end) = span.end else { return };
    let lo = (span.start.as_secs_f64() * scale).floor() as usize;
    let hi = ((end.as_secs_f64() * scale).ceil() as usize).min(width);
    for cell in cells.iter_mut().take(hi).skip(lo.min(width)) {
        *cell = mark;
    }
}

/// Render one Gantt row per device track over `[0, span]`, in order of
/// first appearance in the span stream. Device-op spans paint `#`; fault
/// spans paint `!` on top (recovery time is charged inside an op).
pub fn gantt_rows(rec: &Recorder, span: Duration, width: usize) -> Vec<TrackRow> {
    assert!(width > 0 && !span.is_zero(), "degenerate gantt row");
    let spans = rec.spans();
    let scale = width as f64 / span.as_secs_f64();
    let mut rows: Vec<(String, Vec<char>, Duration)> = Vec::new();
    for s in &spans {
        if !matches!(s.kind, SpanKind::DeviceOp | SpanKind::Fault) {
            continue;
        }
        let idx = match rows.iter().position(|(t, _, _)| *t == s.track) {
            Some(i) => i,
            None => {
                rows.push((s.track.clone(), vec!['.'; width], Duration::ZERO));
                rows.len() - 1
            }
        };
        let (_, cells, busy) = &mut rows[idx];
        match s.kind {
            SpanKind::DeviceOp => {
                paint(cells, s, scale, '#');
                *busy += s.duration();
            }
            SpanKind::Fault => paint(cells, s, scale, '!'),
            _ => unreachable!(),
        }
    }
    rows.into_iter()
        .map(|(track, cells, busy)| TrackRow {
            track,
            cells: cells.into_iter().collect(),
            busy,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapejoin_sim::{now, sleep, Simulation};

    #[test]
    fn rows_paint_ops_and_faults() {
        let rec = Recorder::enabled();
        let rec2 = rec.clone();
        let mut sim = Simulation::new();
        let end = sim.run(async move {
            sleep(Duration::from_nanos(50)).await;
            rec2.leaf(SpanKind::DeviceOp, "tape", "tape", SimTime::ZERO, now());
            rec2.leaf(
                SpanKind::Fault,
                "tape",
                "fault",
                SimTime::from_nanos(40),
                now(),
            );
            sleep(Duration::from_nanos(50)).await;
            rec2.leaf(
                SpanKind::DeviceOp,
                "disk",
                "disk",
                SimTime::from_nanos(50),
                now(),
            );
            now()
        });
        assert_eq!(trace_end(&rec), end);
        let rows = gantt_rows(&rec, end.duration_since(SimTime::ZERO), 10);
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].track, "tape");
        assert_eq!(rows[0].cells, "####!.....");
        assert_eq!(rows[0].busy, Duration::from_nanos(50));
        assert_eq!(rows[1].cells, ".....#####");
    }
}
