//! Exporters: Chrome/Perfetto trace-event JSON for span streams, and
//! CSV / JSON dumps for metrics snapshots.
//!
//! The trace output is the JSON Array / JSON Object trace-event format
//! understood by `ui.perfetto.dev` and `chrome://tracing`: one `"X"`
//! (complete) event per closed span with microsecond `ts`/`dur`, one
//! thread per track, and `"M"` metadata events naming the process and the
//! per-track threads.

use crate::json::{self, Json};
use crate::metrics::MetricsSnapshot;
use crate::span::{AttrValue, Recorder, Span};

/// Virtual nanoseconds rendered as fractional microseconds, exactly
/// (`1234` ns → `"1.234"`), avoiding float rounding on large timestamps.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000, ns % 1_000)
}

fn attr_json(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::F64(v) => {
            if v.is_finite() {
                format!("{v}")
            } else {
                format!("\"{v}\"")
            }
        }
        AttrValue::Str(s) => format!("\"{}\"", json::escape(s)),
        AttrValue::Bool(b) => b.to_string(),
    }
}

/// Stable track → tid assignment, in order of first appearance in the
/// span stream (deterministic because the stream is).
fn track_ids(spans: &[Span]) -> Vec<(String, u64)> {
    let mut tracks: Vec<(String, u64)> = Vec::new();
    for span in spans {
        if !tracks.iter().any(|(t, _)| *t == span.track) {
            let tid = tracks.len() as u64 + 1;
            tracks.push((span.track.clone(), tid));
        }
    }
    tracks
}

/// Render every *closed* span in the recorder as a Perfetto trace-event
/// JSON document. Open spans are omitted (the conservation auditor flags
/// them separately).
pub fn perfetto_trace(rec: &Recorder) -> String {
    let spans = rec.spans();
    let tracks = track_ids(&spans);
    let mut events: Vec<String> = Vec::new();
    events.push(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"tapejoin\"}}"
            .to_string(),
    );
    for (track, tid) in &tracks {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\
             \"args\":{{\"name\":\"{}\"}}}}",
            json::escape(track)
        ));
    }
    for span in &spans {
        let Some(end) = span.end else { continue };
        let tid = tracks
            .iter()
            .find(|(t, _)| *t == span.track)
            .map(|(_, tid)| *tid)
            .unwrap_or(0);
        let mut args: Vec<String> = vec![format!("\"kind\":\"{}\"", span.kind.category())];
        for (key, value) in &span.attrs {
            args.push(format!("\"{}\":{}", json::escape(key), attr_json(value)));
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\
             \"pid\":1,\"tid\":{tid},\"args\":{{{}}}}}",
            json::escape(&span.name),
            span.kind.category(),
            micros(span.start.as_nanos()),
            micros(end.duration_since(span.start).as_nanos()),
            args.join(",")
        ));
    }
    format!(
        "{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n{}\n]}}\n",
        events.join(",\n")
    )
}

/// Validate a trace-event JSON document against the subset of the schema
/// Perfetto requires to load it: a top-level object with a `traceEvents`
/// array whose members each carry a string `ph`; `"X"` events must have
/// string `name`, non-negative numeric `ts` and `dur`, and numeric
/// `pid`/`tid`. Returns the number of `"X"` events on success.
pub fn validate_trace_event_json(doc: &str) -> Result<usize, String> {
    let parsed = json::parse(doc)?;
    let events = parsed
        .get("traceEvents")
        .ok_or("missing 'traceEvents' key")?
        .as_arr()
        .ok_or("'traceEvents' is not an array")?;
    let mut complete = 0usize;
    for (i, ev) in events.iter().enumerate() {
        let obj = ev
            .as_obj()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: missing string 'ph'"))?;
        if ph != "X" {
            continue;
        }
        complete += 1;
        obj.get("name")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("event {i}: 'X' event missing string 'name'"))?;
        for field in ["ts", "dur", "pid", "tid"] {
            let n = obj
                .get(field)
                .and_then(Json::as_num)
                .ok_or_else(|| format!("event {i}: 'X' event missing numeric '{field}'"))?;
            if !n.is_finite() || (field != "ts" && n < 0.0) {
                return Err(format!("event {i}: '{field}' = {n} is invalid"));
            }
        }
    }
    Ok(complete)
}

fn num_json(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        format!("\"{v}\"")
    }
}

/// Render a metrics snapshot as CSV
/// (`kind,metric,value,count,min,max,p50,p95,p99`). Counters and gauges
/// leave the histogram columns empty.
pub fn metrics_csv(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("kind,metric,value,count,min,max,p50,p95,p99\n");
    for (key, v) in &snap.counters {
        out.push_str(&format!("counter,{},{v},,,,,,\n", csv_field(&key.render())));
    }
    for (key, v) in &snap.gauges {
        out.push_str(&format!("gauge,{},{v},,,,,,\n", csv_field(&key.render())));
    }
    for (key, h) in &snap.histograms {
        out.push_str(&format!(
            "histogram,{},{},{},{},{},{},{},{}\n",
            csv_field(&key.render()),
            h.sum,
            h.count,
            h.min,
            h.max,
            h.quantile(0.50),
            h.quantile(0.95),
            h.quantile(0.99),
        ));
    }
    out
}

fn csv_field(s: &str) -> String {
    if s.contains(',') || s.contains('"') || s.contains('\n') {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_string()
    }
}

/// Render a metrics snapshot as a JSON document with `counters`, `gauges`
/// and `histograms` objects keyed by the rendered metric key.
pub fn metrics_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\n  \"counters\": {");
    out.push_str(
        &snap
            .counters
            .iter()
            .map(|(k, v)| format!("\n    \"{}\": {v}", json::escape(&k.render())))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("\n  },\n  \"gauges\": {");
    out.push_str(
        &snap
            .gauges
            .iter()
            .map(|(k, v)| format!("\n    \"{}\": {}", json::escape(&k.render()), num_json(*v)))
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("\n  },\n  \"histograms\": {");
    out.push_str(
        &snap
            .histograms
            .iter()
            .map(|(k, h)| {
                format!(
                    "\n    \"{}\": {{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \
                     \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    json::escape(&k.render()),
                    h.count,
                    h.sum,
                    h.min,
                    h.max,
                    h.quantile(0.50),
                    h.quantile(0.95),
                    h.quantile(0.99),
                )
            })
            .collect::<Vec<_>>()
            .join(","),
    );
    out.push_str("\n  }\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricKey;
    use crate::span::SpanKind;
    use tapejoin_sim::{now, sleep, Duration, Simulation};

    fn sample_recorder() -> Recorder {
        let rec = Recorder::enabled();
        let rec2 = rec.clone();
        let mut sim = Simulation::new();
        sim.run(async move {
            let join = rec2.scope(SpanKind::Join, "join", "DT-NB");
            join.attr("seed", 42u64);
            {
                let _step = rec2.scope(SpanKind::Step, "join", "step1");
                sleep(Duration::from_micros(1500)).await;
                rec2.leaf(
                    SpanKind::DeviceOp,
                    "tape-R",
                    "tape-R",
                    now() - Duration::from_micros(1000),
                    now(),
                );
            }
        });
        rec
    }

    #[test]
    fn exported_trace_validates_and_counts_events() {
        let rec = sample_recorder();
        let doc = perfetto_trace(&rec);
        let complete = validate_trace_event_json(&doc).unwrap();
        assert_eq!(complete, 3, "join + step + device-op");
        // Spot-check µs rendering: 1500 µs step duration.
        assert!(doc.contains("\"dur\":1500.000"), "doc: {doc}");
        assert!(doc.contains("\"thread_name\""));
        assert!(doc.contains("\"seed\":42"));
    }

    #[test]
    fn validator_rejects_broken_documents() {
        assert!(validate_trace_event_json("[]").is_err());
        assert!(validate_trace_event_json("{\"traceEvents\": 3}").is_err());
        assert!(validate_trace_event_json(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"ts\":0}]}"
        )
        .is_err());
        assert!(validate_trace_event_json(
            "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"ts\":1,\"dur\":-2,\
             \"pid\":1,\"tid\":1}]}"
        )
        .is_err());
        let ok = "{\"traceEvents\":[{\"ph\":\"X\",\"name\":\"a\",\"ts\":0.5,\"dur\":2,\
                  \"pid\":1,\"tid\":1},{\"ph\":\"M\",\"name\":\"m\"}]}";
        assert_eq!(validate_trace_event_json(ok), Ok(1));
    }

    #[test]
    fn metrics_dumps_are_well_formed() {
        let rec = Recorder::enabled();
        let m = rec.metrics().unwrap();
        m.counter_add(MetricKey::new("tape.blocks").device("tape-R"), 12);
        m.gauge_set(MetricKey::new("buf.occ"), 0.5);
        m.observe(MetricKey::new("svc.time").device("d0"), 2_000);
        let snap = m.snapshot();
        let csv = metrics_csv(&snap);
        assert!(csv.starts_with("kind,metric,value"));
        assert!(csv.contains("counter,tape.blocks{device=tape-R},12"));
        assert!(csv.contains("gauge,buf.occ,0.5"));
        assert!(csv.contains("histogram,svc.time{device=d0},2000,1,2000,2000"));
        let js = metrics_json(&snap);
        let parsed = json::parse(&js).unwrap();
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("tape.blocks{device=tape-R}")
                .unwrap()
                .as_num(),
            Some(12.0)
        );
        assert!(parsed
            .get("histograms")
            .unwrap()
            .get("svc.time{device=d0}")
            .is_some());
    }
}
