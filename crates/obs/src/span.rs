//! Hierarchical spans over virtual time, recorded through a [`Recorder`]
//! handle that is free when disabled.
//!
//! A span is an interval of virtual time on a named *track* (a device, the
//! join driver, the scheduler). Spans nest: *scope* spans (`join`, `step`,
//! `query`) are opened and closed by the code that owns the phase, while
//! *leaf* spans (`device-op`, `fault`) are recorded after the fact with an
//! explicit `[start, end)` and parented to the innermost open scope.
//!
//! The recorder is a cheap-to-clone handle around an optional arena. A
//! disabled recorder ([`Recorder::disabled`], the default) carries no
//! allocation and every operation returns immediately without reading the
//! clock, so instrumented code paths are exact no-ops — the property the
//! determinism suites pin down.
//!
//! lint:allow-file(L9, Recorder handles are fork()ed per task (L6) and never cross threads; ROADMAP-2 merges per-worker span streams by virtual time)

use std::cell::RefCell;
use std::rc::Rc;

use tapejoin_sim::{now, Duration, SimTime};

use crate::metrics::MetricsRegistry;

/// What a span describes, which also decides how the auditor treats it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// One whole join execution (root of a single-query trace).
    Join,
    /// A phase of a join (Step I / Step II).
    Step,
    /// One scheduled query or shared batch inside a workload run.
    Query,
    /// Query planning: parse, logical rewrite, physical enumeration
    /// (zero-width in virtual time under the zero-CPU assumption, but
    /// the scope carries plan attributes — chosen order, methods, cost).
    Plan,
    /// A generic scope (workload root, library exchange, ...).
    Scope,
    /// One service interval on a device (tape drive, disk array).
    DeviceOp,
    /// Fault-recovery time charged by a device (disjoint from clean
    /// service; overlaps the device op it was drawn inside).
    Fault,
}

impl SpanKind {
    /// Category label used by the Perfetto exporter.
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Join => "join",
            SpanKind::Step => "step",
            SpanKind::Query => "query",
            SpanKind::Plan => "plan",
            SpanKind::Scope => "scope",
            SpanKind::DeviceOp => "device-op",
            SpanKind::Fault => "fault",
        }
    }

    /// `true` for span kinds that are opened/closed around a phase of
    /// execution (and therefore strictly nest), as opposed to leaf spans
    /// recorded after the fact.
    pub fn is_scope(self) -> bool {
        matches!(
            self,
            SpanKind::Join | SpanKind::Step | SpanKind::Query | SpanKind::Plan | SpanKind::Scope
        )
    }
}

/// A typed attribute value attached to a span.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer.
    U64(u64),
    /// Float.
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// Index of a span in its recorder's arena.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub usize);

/// One recorded interval of virtual time.
#[derive(Clone, Debug)]
pub struct Span {
    /// Arena index.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Span kind.
    pub kind: SpanKind,
    /// Track (timeline row) the span belongs to — a device name or a
    /// logical lane like `"join"` / `"sched"`.
    pub track: String,
    /// Human-readable name.
    pub name: String,
    /// Start instant.
    pub start: SimTime,
    /// End instant; `None` while the span is still open.
    pub end: Option<SimTime>,
    /// Typed attributes.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Span length (zero while still open).
    pub fn duration(&self) -> Duration {
        self.end
            .map(|e| e.duration_since(self.start))
            .unwrap_or(Duration::ZERO)
    }
}

struct Inner {
    spans: Rc<RefCell<Vec<Span>>>,
    /// Open scope spans in open order; the *last* element is the
    /// innermost scope and becomes the parent of new spans.
    stack: RefCell<Vec<SpanId>>,
    /// Parent for spans opened when this handle's own stack is empty —
    /// the scope that was innermost when the handle was [`Recorder::fork`]ed.
    base: Option<SpanId>,
    metrics: Rc<MetricsRegistry>,
}

/// Recording handle threaded through the simulator, the device models and
/// the join/scheduler layers. Cheap to clone; all clones share one arena.
#[derive(Clone, Default)]
pub struct Recorder {
    inner: Option<Rc<Inner>>,
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            Some(inner) => write!(f, "Recorder(enabled, {} spans)", inner.spans.borrow().len()),
            None => write!(f, "Recorder(disabled)"),
        }
    }
}

impl Recorder {
    /// An enabled recorder with a fresh arena.
    pub fn enabled() -> Self {
        Recorder {
            inner: Some(Rc::new(Inner {
                spans: Rc::new(RefCell::new(Vec::new())),
                stack: RefCell::new(Vec::new()),
                base: None,
                metrics: Rc::new(MetricsRegistry::new()),
            })),
        }
    }

    /// A handle over the *same* span arena and metrics registry but with
    /// an independent open-scope stack. Scopes opened on the fork while
    /// its stack is empty parent to the scope that was innermost in
    /// `self` at fork time. This is how concurrent tasks (the scheduler's
    /// query executors) each get correct nesting: a shared stack would
    /// cross-link scopes of interleaved tasks. Forking a disabled
    /// recorder yields a disabled recorder.
    pub fn fork(&self) -> Recorder {
        let Some(inner) = &self.inner else {
            return Recorder::disabled();
        };
        Recorder {
            inner: Some(Rc::new(Inner {
                spans: Rc::clone(&inner.spans),
                stack: RefCell::new(Vec::new()),
                base: inner.stack.borrow().last().copied().or(inner.base),
                metrics: Rc::clone(&inner.metrics),
            })),
        }
    }

    /// A handle sharing *both* the arena and the live open-scope stack —
    /// for observers that run on the same task, such as a device model
    /// whose `device-op` leaves must parent to whatever step scope is
    /// innermost when the I/O happens.
    ///
    /// This is deliberately distinct from [`Recorder::fork`]: `share()`
    /// for same-task observer handles, `fork()` whenever the handle
    /// crosses into a spawned task. A raw `.clone()` on a recorder handle
    /// does not say which of the two is meant, so the workspace linter
    /// (rule L6) rejects it.
    pub fn share(&self) -> Recorder {
        self.clone()
    }

    /// The no-op recorder (also [`Default`]).
    pub fn disabled() -> Self {
        Recorder { inner: None }
    }

    /// `true` when spans and metrics are actually collected.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The shared metrics registry, when enabled.
    pub fn metrics(&self) -> Option<&MetricsRegistry> {
        self.inner.as_deref().map(|i| &*i.metrics)
    }

    /// Open a scope span at the current virtual time. The returned guard
    /// closes the span (and pops it from the scope stack) on drop; new
    /// spans opened in between are parented to it. On a disabled recorder
    /// this is an exact no-op and never reads the clock.
    pub fn scope(
        &self,
        kind: SpanKind,
        track: impl Into<String>,
        name: impl Into<String>,
    ) -> ScopeGuard {
        debug_assert!(kind.is_scope(), "leaf kinds go through Recorder::leaf");
        let Some(inner) = &self.inner else {
            return ScopeGuard {
                rec: Recorder::disabled(),
                id: None,
            };
        };
        let id = {
            let mut spans = inner.spans.borrow_mut();
            let mut stack = inner.stack.borrow_mut();
            let id = SpanId(spans.len());
            spans.push(Span {
                id,
                parent: stack.last().copied().or(inner.base),
                kind,
                track: track.into(),
                name: name.into(),
                start: now(),
                end: None,
                attrs: Vec::new(),
            });
            stack.push(id);
            id
        };
        ScopeGuard {
            rec: self.clone(),
            id: Some(id),
        }
    }

    /// Record a completed leaf span over `[start, end)`, parented to the
    /// innermost open scope. Returns the id when enabled.
    pub fn leaf(
        &self,
        kind: SpanKind,
        track: impl Into<String>,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) -> Option<SpanId> {
        let inner = self.inner.as_deref()?;
        let mut spans = inner.spans.borrow_mut();
        let id = SpanId(spans.len());
        spans.push(Span {
            id,
            parent: inner.stack.borrow().last().copied().or(inner.base),
            kind,
            track: track.into(),
            name: name.into(),
            start,
            end: Some(end),
            attrs: Vec::new(),
        });
        Some(id)
    }

    /// Attach a typed attribute to an already-recorded span.
    pub fn attr(&self, id: SpanId, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(inner) = &self.inner {
            inner.spans.borrow_mut()[id.0]
                .attrs
                .push((key, value.into()));
        }
    }

    /// Snapshot of every span recorded so far (open spans keep
    /// `end == None`).
    pub fn spans(&self) -> Vec<Span> {
        match &self.inner {
            Some(inner) => inner.spans.borrow().clone(),
            None => Vec::new(),
        }
    }

    /// Number of spans recorded (0 when disabled).
    pub fn len(&self) -> usize {
        self.inner.as_deref().map_or(0, |i| i.spans.borrow().len())
    }

    /// `true` when nothing has been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn close(&self, id: SpanId) {
        let Some(inner) = &self.inner else { return };
        let end = now();
        {
            let mut spans = inner.spans.borrow_mut();
            let span = &mut spans[id.0];
            debug_assert!(span.end.is_none(), "scope closed twice");
            span.end = Some(end);
        }
        // Guards may drop out of open order when scopes belong to
        // concurrent tasks; remove this id wherever it sits.
        let mut stack = inner.stack.borrow_mut();
        if let Some(pos) = stack.iter().rposition(|&s| s == id) {
            stack.remove(pos);
        }
    }
}

/// Forward every service interval of an instrumented [`tapejoin_sim::Server`]
/// into the recorder as a `device-op` leaf span on the server's track.
impl tapejoin_sim::ServiceObserver for Recorder {
    fn service(&self, server: &str, start: SimTime, end: SimTime) {
        self.leaf(SpanKind::DeviceOp, server, server, start, end);
    }
}

/// RAII guard for a scope span; closes it at the current virtual time on
/// drop.
pub struct ScopeGuard {
    rec: Recorder,
    id: Option<SpanId>,
}

impl ScopeGuard {
    /// The span's id, when recording is enabled.
    pub fn id(&self) -> Option<SpanId> {
        self.id
    }

    /// Attach a typed attribute to the span (builder style not needed —
    /// the guard is usually a local).
    pub fn attr(&self, key: &'static str, value: impl Into<AttrValue>) {
        if let Some(id) = self.id {
            self.rec.attr(id, key, value);
        }
    }
}

impl Drop for ScopeGuard {
    fn drop(&mut self) {
        if let Some(id) = self.id.take() {
            self.rec.close(id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tapejoin_sim::{sleep, Simulation};

    #[test]
    fn disabled_recorder_is_inert() {
        let rec = Recorder::disabled();
        assert!(!rec.is_enabled());
        // No simulation is running: a disabled scope must not read the
        // clock (it would panic if it did).
        let guard = rec.scope(SpanKind::Join, "join", "x");
        assert_eq!(guard.id(), None);
        drop(guard);
        assert!(rec.spans().is_empty());
        assert!(rec.metrics().is_none());
    }

    #[test]
    fn scopes_nest_and_parent_leaves() {
        let rec = Recorder::enabled();
        let mut sim = Simulation::new();
        let rec2 = rec.clone();
        sim.run(async move {
            let join = rec2.scope(SpanKind::Join, "join", "CDT-GH");
            sleep(Duration::from_secs(1)).await;
            {
                let step = rec2.scope(SpanKind::Step, "join", "step1");
                step.attr("chunk", 4u64);
                sleep(Duration::from_secs(2)).await;
                rec2.leaf(
                    SpanKind::DeviceOp,
                    "tape-R",
                    "tape-R",
                    now() - Duration::from_secs(1),
                    now(),
                );
            }
            drop(join);
        });
        let spans = rec.spans();
        assert_eq!(spans.len(), 3);
        let join = &spans[0];
        let step = &spans[1];
        let op = &spans[2];
        assert_eq!(join.parent, None);
        assert_eq!(step.parent, Some(join.id));
        assert_eq!(op.parent, Some(step.id));
        assert_eq!(join.duration(), Duration::from_secs(3));
        assert_eq!(step.duration(), Duration::from_secs(2));
        assert_eq!(step.attrs[0], ("chunk", AttrValue::U64(4)));
        assert!(join.end.is_some() && step.end.is_some());
    }

    #[test]
    fn forks_share_the_arena_but_not_the_stack() {
        let rec = Recorder::enabled();
        let mut sim = Simulation::new();
        let rec2 = rec.clone();
        sim.run(async move {
            let root = rec2.scope(SpanKind::Scope, "sched", "workload");
            let fork_a = rec2.fork();
            let fork_b = rec2.fork();
            // Interleaved query scopes on separate forks: each parents to
            // the workload root, never to the other query.
            let qa = fork_a.scope(SpanKind::Query, "sched", "q0");
            let qb = fork_b.scope(SpanKind::Query, "sched", "q1");
            let step_b = fork_b.scope(SpanKind::Step, "sched", "step1");
            let spans = rec2.spans();
            assert_eq!(spans.len(), 4);
            assert_eq!(spans[1].parent, Some(root.id().unwrap()));
            assert_eq!(spans[2].parent, Some(root.id().unwrap()));
            assert_eq!(spans[3].parent, qb.id());
            drop(step_b);
            drop(qa);
            drop(qb);
            drop(root);
        });
        assert_eq!(rec.len(), 4);
        assert!(rec.spans().iter().all(|s| s.end.is_some()));
        // Metrics registry is shared across forks.
        let fork = rec.fork();
        fork.metrics()
            .unwrap()
            .counter_add(crate::metrics::MetricKey::new("x"), 1);
        assert_eq!(
            rec.metrics()
                .unwrap()
                .counter(&crate::metrics::MetricKey::new("x")),
            1
        );
    }

    #[test]
    fn out_of_order_guard_drops_are_tolerated() {
        let rec = Recorder::enabled();
        let mut sim = Simulation::new();
        let rec2 = rec.clone();
        sim.run(async move {
            let a = rec2.scope(SpanKind::Query, "sched", "q0");
            let b = rec2.scope(SpanKind::Query, "sched", "q1");
            drop(a); // closes the *outer* guard first
            let c = rec2.scope(SpanKind::Query, "sched", "q2");
            // c must parent to b (the only still-open scope), not to a.
            assert_eq!(rec2.spans()[2].parent, Some(b.id().unwrap()));
            drop(b);
            drop(c);
        });
        assert!(rec.spans().iter().all(|s| s.end.is_some()));
    }
}
